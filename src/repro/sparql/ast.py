"""Abstract syntax tree for the supported SPARQL subset.

The parser produces these nodes; :mod:`repro.sparql.algebra` lowers them
to algebra operators.  Expression nodes double as the runtime expression
representation (the evaluator walks them directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..rdf.terms import BNode, Literal, URI

__all__ = [
    "Var",
    "TermOrVar",
    "PathExpr",
    "InversePath",
    "SequencePath",
    "AlternativePath",
    "RepeatPath",
    "PredicateOrPath",
    "ExistsExpr",
    "TriplePatternNode",
    "GroupGraphPattern",
    "OptionalPattern",
    "UnionPattern",
    "MinusPattern",
    "FilterPattern",
    "BindPattern",
    "ValuesPattern",
    "SubSelectPattern",
    "PatternNode",
    "Expression",
    "VarExpr",
    "TermExpr",
    "BinaryExpr",
    "UnaryExpr",
    "FunctionCall",
    "AggregateExpr",
    "InExpr",
    "SelectQuery",
    "AskQuery",
    "ConstructQuery",
    "Query",
    "Projection",
    "OrderCondition",
]


@dataclass(frozen=True)
class Var:
    """A query variable, e.g. ``?s``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


TermOrVar = Union[Var, URI, BNode, Literal]


# ----------------------------------------------------------------------
# Property paths (SPARQL 1.1)
# ----------------------------------------------------------------------


class PathExpr:
    """Marker base class for property-path expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class InversePath(PathExpr):
    """``^path`` — follow edges backwards."""

    inner: Union[URI, "PathExpr"]

    def __str__(self) -> str:
        return f"^{_path_str(self.inner)}"


@dataclass(frozen=True)
class SequencePath(PathExpr):
    """``p1/p2/...`` — path composition."""

    steps: Tuple[Union[URI, "PathExpr"], ...]

    def __str__(self) -> str:
        return "/".join(_path_str(step) for step in self.steps)


@dataclass(frozen=True)
class AlternativePath(PathExpr):
    """``p1|p2|...`` — union of paths."""

    choices: Tuple[Union[URI, "PathExpr"], ...]

    def __str__(self) -> str:
        return "(" + "|".join(_path_str(c) for c in self.choices) + ")"


@dataclass(frozen=True)
class RepeatPath(PathExpr):
    """``path*`` (min_hops=0), ``path+`` (1), or ``path?`` (0, capped 1)."""

    inner: Union[URI, "PathExpr"]
    min_hops: int = 0
    max_one: bool = False  # True for '?'

    def __str__(self) -> str:
        suffix = "?" if self.max_one else ("+" if self.min_hops else "*")
        return f"{_path_str(self.inner)}{suffix}"


def _path_str(node: Union[URI, PathExpr]) -> str:
    if isinstance(node, URI):
        return node.n3()
    return str(node)


#: What may appear in the predicate position of a triple pattern.
PredicateOrPath = Union[Var, URI, PathExpr]


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


class Expression:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class VarExpr(Expression):
    var: Var

    def __str__(self) -> str:
        return str(self.var)


@dataclass(frozen=True)
class TermExpr(Expression):
    term: Union[URI, Literal]

    def __str__(self) -> str:
        return self.term.n3()


@dataclass(frozen=True)
class BinaryExpr(Expression):
    op: str  # one of || && = != < > <= >= + - * /
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryExpr(Expression):
    op: str  # one of ! + -
    operand: Expression

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str  # canonical upper-case builtin name
    args: Tuple[Expression, ...]

    def __str__(self) -> str:
        args = ", ".join(str(arg) for arg in self.args)
        return f"{self.name}({args})"


@dataclass(frozen=True)
class AggregateExpr(Expression):
    name: str  # COUNT SUM AVG MIN MAX SAMPLE GROUP_CONCAT
    argument: Optional[Expression]  # None means COUNT(*)
    distinct: bool = False
    separator: str = " "

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.name}({distinct}{inner})"


@dataclass
class ExistsExpr(Expression):
    """``EXISTS { ... }`` / ``NOT EXISTS { ... }`` filter expressions.

    Mutable dataclass (the pattern is a mutable group) but never mutated
    after parsing.
    """

    pattern: "GroupGraphPattern"
    negated: bool = False

    def __str__(self) -> str:
        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{keyword} {self.pattern}"

    def __hash__(self) -> int:  # allow use inside frozen parents
        return id(self)


@dataclass(frozen=True)
class InExpr(Expression):
    """``expr IN (…)`` / ``expr NOT IN (…)``."""

    operand: Expression
    choices: Tuple[Expression, ...]
    negated: bool = False

    def __str__(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        choices = ", ".join(str(choice) for choice in self.choices)
        return f"({self.operand} {keyword} ({choices}))"


# ----------------------------------------------------------------------
# Graph patterns
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TriplePatternNode:
    subject: TermOrVar
    predicate: PredicateOrPath
    object: TermOrVar

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))

    def variables(self) -> set:
        return {t.name for t in (self.subject, self.predicate, self.object) if isinstance(t, Var)}

    def __str__(self) -> str:
        def show(term) -> str:
            if isinstance(term, (Var, PathExpr)):
                return str(term)
            return term.n3()

        return f"{show(self.subject)} {show(self.predicate)} {show(self.object)} ."


@dataclass
class GroupGraphPattern:
    """A ``{ ... }`` group: ordered child patterns."""

    children: List["PatternNode"] = field(default_factory=list)

    def __str__(self) -> str:
        inner = " ".join(str(child) for child in self.children)
        return f"{{ {inner} }}"


@dataclass
class OptionalPattern:
    pattern: GroupGraphPattern

    def __str__(self) -> str:
        return f"OPTIONAL {self.pattern}"


@dataclass
class UnionPattern:
    alternatives: List[GroupGraphPattern]

    def __str__(self) -> str:
        return " UNION ".join(str(alt) for alt in self.alternatives)


@dataclass
class MinusPattern:
    pattern: GroupGraphPattern

    def __str__(self) -> str:
        return f"MINUS {self.pattern}"


@dataclass
class FilterPattern:
    expression: Expression

    def __str__(self) -> str:
        return f"FILTER({self.expression})"


@dataclass
class BindPattern:
    expression: Expression
    var: Var

    def __str__(self) -> str:
        return f"BIND({self.expression} AS {self.var})"


@dataclass
class ValuesPattern:
    variables: List[Var]
    rows: List[Tuple[Optional[Union[URI, Literal]], ...]]

    def __str__(self) -> str:
        vars_text = " ".join(str(v) for v in self.variables)
        return f"VALUES ({vars_text}) {{ ... }}"


@dataclass
class SubSelectPattern:
    query: "SelectQuery"

    def __str__(self) -> str:
        return f"{{ {self.query} }}"


PatternNode = Union[
    TriplePatternNode,
    GroupGraphPattern,
    OptionalPattern,
    UnionPattern,
    MinusPattern,
    FilterPattern,
    BindPattern,
    ValuesPattern,
    SubSelectPattern,
]


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Projection:
    """One SELECT item: a plain variable or ``(expr AS ?var)``."""

    var: Var
    expression: Optional[Expression] = None

    def __str__(self) -> str:
        if self.expression is None:
            return str(self.var)
        return f"({self.expression} AS {self.var})"


@dataclass(frozen=True)
class OrderCondition:
    expression: Expression
    descending: bool = False

    def __str__(self) -> str:
        keyword = "DESC" if self.descending else "ASC"
        return f"{keyword}({self.expression})"


@dataclass
class SelectQuery:
    projections: Optional[List[Projection]]  # None means SELECT *
    where: GroupGraphPattern
    distinct: bool = False
    reduced: bool = False
    group_by: List[Union[Expression, Projection]] = field(default_factory=list)
    having: List[Expression] = field(default_factory=list)
    order_by: List[OrderCondition] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0

    def __str__(self) -> str:
        head = "SELECT "
        if self.distinct:
            head += "DISTINCT "
        if self.projections is None:
            head += "*"
        else:
            head += " ".join(str(p) for p in self.projections)
        parts = [head, f"WHERE {self.where}"]
        if self.group_by:
            parts.append(
                "GROUP BY " + " ".join(str(g) for g in self.group_by)
            )
        if self.having:
            parts.append("HAVING " + " ".join(f"({h})" for h in self.having))
        if self.order_by:
            parts.append("ORDER BY " + " ".join(str(o) for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


@dataclass
class AskQuery:
    where: GroupGraphPattern

    def __str__(self) -> str:
        return f"ASK {self.where}"


@dataclass
class ConstructQuery:
    """``CONSTRUCT { template } WHERE { ... }``.

    The template is a list of triple patterns instantiated once per
    solution; blank nodes in the template are freshened per solution.
    """

    template: List[TriplePatternNode]
    where: GroupGraphPattern
    limit: Optional[int] = None
    offset: int = 0

    def __str__(self) -> str:
        template = " ".join(str(t) for t in self.template)
        parts = [f"CONSTRUCT {{ {template} }} WHERE {self.where}"]
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


Query = Union[SelectQuery, AskQuery, ConstructQuery]
