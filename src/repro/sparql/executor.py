"""Time-sliced execution of physical plans with continuation tokens.

The executor is what turns the suspendable operator protocol
(:mod:`repro.sparql.physical`) into the paper's responsiveness story: a
plan runs for one *quantum* — until a wall-clock deadline or a row
budget is hit — then suspends, and the caller receives the rows
produced so far plus an opaque, serialisable **continuation token** that
resumes the execution exactly where it stopped.  Endpoints thread the
token through the simulated HTTP wire so clients page through heavy
results (``LocalEndpoint.query(..., quantum_ms=, page_size=)``), and
:class:`RoundRobinScheduler` multiplexes many live plans fairly so one
heavy property expansion cannot monopolise the engine.

Continuation tokens are stateless on the server: base64-encoded JSON
carrying a format version, the graph version the execution started
against, the query text, and the saved operator-state tree.  Decoding
distinguishes three failure classes, each surfaced as a clean protocol
error rather than a wrong answer:

- **malformed** (:class:`MalformedTokenError`) — not base64/JSON, or the
  state tree does not fit the plan compiled from the embedded query;
- **cross-version** (:class:`TokenVersionError`) — minted by a different
  token format version of the software;
- **expired** (:class:`ExpiredTokenError`) — the graph changed since the
  token was minted, so scan-offset replay is no longer meaningful; the
  client must restart the query.
"""

from __future__ import annotations

import base64
import binascii
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import REGISTRY
from ..rdf.graph import Graph
from .errors import SparqlError
from .evaluator import EvalStats
from .functions import Binding
from .physical import PlanStateError
from .planner import PhysicalPlan, PhysicalPlanFactory
from .results import AskResult, SelectResult

__all__ = [
    "TOKEN_VERSION",
    "DEFAULT_QUANTUM_MS",
    "ContinuationError",
    "MalformedTokenError",
    "TokenVersionError",
    "ExpiredTokenError",
    "Page",
    "run_quantum",
    "run_to_completion",
    "encode_continuation",
    "decode_continuation",
    "restore_plan",
    "RoundRobinScheduler",
]

#: Format version minted into every continuation token.  Version 2:
#: blocking operators (aggregation, sort, top-k) serialise streaming
#: accumulators and only their un-emitted suffix, so tokens are
#: O(groups) — not O(input) — and shrink as results drain.
#:
#: PR 8 adds ``PathScan`` operator states to the tree (BFS frontier +
#: sorted visited set + emit buffer instead of a skip-ahead offset)
#: without bumping the envelope: non-path tokens are unchanged, and a
#: pre-PR 8 path token carries a ``PatternScan``-labelled state where
#: the restored plan now expects ``PathScan``, so it fails the per-node
#: label check and is rejected as a clean ``MalformedTokenError`` 400
#: rather than resuming a traversal whose order the old kernel never
#: guaranteed across processes anyway.
TOKEN_VERSION = 2

#: Default time slice when paging is requested without an explicit quantum.
DEFAULT_QUANTUM_MS = 50.0

_PAGES_TOTAL = REGISTRY.counter(
    "repro_exec_pages_total",
    "Result pages served by the physical executor, by outcome",
    labelnames=("outcome",),
)
_SUSPENSIONS_TOTAL = REGISTRY.counter(
    "repro_exec_suspensions_total",
    "Plan suspensions by trigger (deadline or row budget)",
    labelnames=("reason",),
)
_RESUMES_TOTAL = REGISTRY.counter(
    "repro_exec_resumes_total",
    "Plan executions restored from a continuation token",
)
_TOKEN_REJECTS_TOTAL = REGISTRY.counter(
    "repro_exec_token_rejects_total",
    "Continuation tokens rejected, by failure class",
    labelnames=("reason",),
)
_SCHEDULER_ROUNDS_TOTAL = REGISTRY.counter(
    "repro_exec_scheduler_rounds_total",
    "Completed round-robin scheduling rounds over live plans",
)
_OPERATOR_STEPS_TOTAL = REGISTRY.counter(
    "repro_exec_operator_steps_total",
    "Bounded next() steps driven through plan roots by the executor",
)


class ContinuationError(SparqlError):
    """Base class for continuation-token protocol errors."""


class MalformedTokenError(ContinuationError):
    """The token is not decodable or does not fit the compiled plan."""


class TokenVersionError(ContinuationError):
    """The token was minted by an incompatible token-format version."""


class ExpiredTokenError(ContinuationError):
    """The graph changed since the token was minted; restart the query."""


@dataclass
class Page:
    """One quantum's worth of results.

    ``stats`` is the :class:`EvalStats` *delta* for this page only, so
    the endpoint's cost model can charge simulated latency per page
    instead of per query.  ``reason`` records why the quantum ended:
    ``"complete"``, ``"deadline"``, or ``"row_budget"``.
    """

    rows: List[Binding]
    variables: List[str]
    complete: bool
    reason: str
    stats: EvalStats = field(default_factory=EvalStats)


def _stats_delta(before: EvalStats, after: EvalStats) -> EvalStats:
    return EvalStats(
        intermediate_bindings=after.intermediate_bindings
        - before.intermediate_bindings,
        pattern_scans=after.pattern_scans - before.pattern_scans,
        results=after.results - before.results,
        groups=after.groups - before.groups,
    )


def run_quantum(
    plan: PhysicalPlan,
    quantum_ms: Optional[float] = None,
    page_size: Optional[int] = None,
) -> Page:
    """Drive ``plan`` until done, deadline, or row budget.

    With neither bound set this runs to completion.  The plan stays
    live; serialising it into a token (or keeping it in a scheduler) is
    the caller's choice.
    """
    before = EvalStats()
    before.merge(plan.stats)
    deadline = (
        perf_counter() + quantum_ms / 1000.0 if quantum_ms is not None else None
    )
    rows: List[Binding] = []
    reason = "complete"
    root = plan.root
    steps = 0
    while not root.done:
        row = root.next()
        steps += 1
        if row is not None:
            rows.append(row)
            plan.stats.results += 1
            if page_size is not None and len(rows) >= page_size:
                if not root.done:
                    reason = "row_budget"
                break
        if deadline is not None and perf_counter() >= deadline:
            if not root.done:
                reason = "deadline"
            break
    _OPERATOR_STEPS_TOTAL.inc(steps)
    complete = root.done
    _PAGES_TOTAL.labels(outcome="complete" if complete else "suspended").inc()
    if not complete:
        _SUSPENSIONS_TOTAL.labels(reason=reason).inc()
    return Page(
        rows=rows,
        variables=plan.variables,
        complete=complete,
        reason=reason if not complete else "complete",
        stats=_stats_delta(before, plan.stats),
    )


def run_to_completion(plan: PhysicalPlan):
    """Run a plan to the end and box the result like the evaluator.

    Returns an :class:`AskResult` for ASK plans (short-circuiting on the
    first solution) and a :class:`SelectResult` otherwise.
    """
    if plan.is_ask:
        while not plan.root.done:
            if plan.root.next() is not None:
                return AskResult(True, stats=plan.stats)
        return AskResult(False, stats=plan.stats)
    page = run_quantum(plan)
    return SelectResult(page.variables, page.rows, stats=plan.stats)


# ----------------------------------------------------------------------
# Continuation tokens
# ----------------------------------------------------------------------


def encode_continuation(plan: PhysicalPlan, graph: Graph, query_text: str) -> str:
    """Mint the opaque resume token for a suspended plan."""
    blob = {
        "v": TOKEN_VERSION,
        "graph": graph.version,
        "query": query_text,
        "state": plan.save(),
    }
    return base64.urlsafe_b64encode(
        json.dumps(blob, separators=(",", ":")).encode("utf-8")
    ).decode("ascii")


def decode_continuation(token: str) -> Dict:
    """Decode and validate a token's envelope (not yet its state tree).

    Raises :class:`MalformedTokenError` on garbage and
    :class:`TokenVersionError` on a format-version mismatch.  Graph
    freshness is checked in :func:`restore_plan`, where the graph is at
    hand.
    """
    try:
        text = base64.urlsafe_b64decode(token.encode("ascii")).decode("utf-8")
        blob = json.loads(text)
    except (ValueError, binascii.Error, UnicodeDecodeError, AttributeError):
        _TOKEN_REJECTS_TOTAL.labels(reason="malformed").inc()
        raise MalformedTokenError("continuation token is not decodable")
    if not isinstance(blob, dict) or not isinstance(blob.get("state"), dict):
        _TOKEN_REJECTS_TOTAL.labels(reason="malformed").inc()
        raise MalformedTokenError("continuation token has no state tree")
    if blob.get("v") != TOKEN_VERSION:
        _TOKEN_REJECTS_TOTAL.labels(reason="version").inc()
        raise TokenVersionError(
            f"continuation token version {blob.get('v')!r} "
            f"is not supported (expected {TOKEN_VERSION})"
        )
    if not isinstance(blob.get("graph"), int) or not isinstance(
        blob.get("query"), str
    ):
        _TOKEN_REJECTS_TOTAL.labels(reason="malformed").inc()
        raise MalformedTokenError("continuation token envelope is incomplete")
    return blob


def restore_plan(
    factory: PhysicalPlanFactory, graph: Graph, blob: Dict
) -> PhysicalPlan:
    """Rebuild a live plan from a decoded token over the current graph.

    Raises :class:`ExpiredTokenError` when the graph has moved on since
    the token was minted (a resumed scan-offset replay would silently
    skip or duplicate rows — invalidation is the only sound answer), and
    :class:`MalformedTokenError` when the state tree does not fit the
    plan compiled from the token's own query.
    """
    if blob["graph"] != graph.version:
        _TOKEN_REJECTS_TOTAL.labels(reason="expired").inc()
        raise ExpiredTokenError(
            "the dataset changed since this continuation token was issued; "
            "restart the query"
        )
    plan = factory.instantiate(graph)
    try:
        plan.load(blob["state"])
    except (PlanStateError, KeyError, TypeError, ValueError) as error:
        _TOKEN_REJECTS_TOTAL.labels(reason="malformed").inc()
        raise MalformedTokenError(
            f"continuation state does not fit the query's plan: {error}"
        )
    _RESUMES_TOTAL.inc()
    return plan


# ----------------------------------------------------------------------
# Fair scheduling
# ----------------------------------------------------------------------


class RoundRobinScheduler:
    """Round-robin multiplexer over live plan executions.

    Each concurrent exploration session submits its plan under a key;
    :meth:`step` runs the next session in rotation for one quantum and
    :meth:`run_round` gives every live session exactly one quantum.
    Plans stay live between turns (no serialisation inside the
    scheduler — tokens are a wire-boundary concern), so the cost of
    fairness is just the bounded quantum itself.

    Besides :class:`~repro.sparql.planner.PhysicalPlan` objects, any
    *task* exposing ``run_quantum(quantum_ms=..., page_size=...) ->
    Page`` can join the rotation — the serving frontend
    (:mod:`repro.serve`) submits whole exploration sessions this way,
    so local plans and remote, token-paged sessions share one fair
    rotation.
    """

    def __init__(
        self,
        quantum_ms: float = DEFAULT_QUANTUM_MS,
        page_size: Optional[int] = None,
    ):
        self.quantum_ms = quantum_ms
        self.page_size = page_size
        self._sessions: "OrderedDict[object, PhysicalPlan]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._sessions)

    def submit(self, key, plan: PhysicalPlan) -> None:
        if key in self._sessions:
            raise ValueError(f"session {key!r} is already scheduled")
        self._sessions[key] = plan

    def cancel(self, key) -> None:
        self._sessions.pop(key, None)

    def step(self) -> Optional[Tuple[object, Page]]:
        """Run the next session in rotation for one quantum.

        Returns ``(key, page)``, or ``None`` when nothing is scheduled.
        Completed sessions leave the rotation; suspended ones move to
        the back of the queue.
        """
        if not self._sessions:
            return None
        key, plan = next(iter(self._sessions.items()))
        self._sessions.pop(key)
        runner = getattr(plan, "run_quantum", None)
        if callable(runner):
            page = runner(quantum_ms=self.quantum_ms, page_size=self.page_size)
        else:
            page = run_quantum(
                plan, quantum_ms=self.quantum_ms, page_size=self.page_size
            )
        if not page.complete:
            self._sessions[key] = plan
        return key, page

    def run_round(self) -> List[Tuple[object, Page]]:
        """One quantum for every currently live session, in queue order."""
        pages: List[Tuple[object, Page]] = []
        for _ in range(len(self._sessions)):
            result = self.step()
            if result is None:
                break
            pages.append(result)
        _SCHEDULER_ROUNDS_TOTAL.inc()
        return pages

    def drain(self) -> Dict[object, List[Binding]]:
        """Run rounds until every session completes; rows per session."""
        collected: Dict[object, List[Binding]] = {
            key: [] for key in self._sessions
        }
        while self._sessions:
            for key, page in self.run_round():
                collected.setdefault(key, []).extend(page.rows)
        return collected
