"""SPARQL tokenizer.

Produces a flat token stream for the recursive-descent parser.  Keywords
are case-insensitive and reported with a canonical upper-case value;
variables, IRIs, prefixed names, literals, and punctuation carry their
exact text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .errors import SparqlSyntaxError

__all__ = ["Token", "TokenType", "tokenize"]


class TokenType:
    """Token type tags (plain strings for cheap comparison)."""

    KEYWORD = "KEYWORD"
    VAR = "VAR"
    IRI = "IRI"
    PNAME = "PNAME"          # prefixed name, e.g. dbo:Person or rdfs:
    BNODE = "BNODE"
    STRING = "STRING"
    LANGTAG = "LANGTAG"
    INTEGER = "INTEGER"
    DECIMAL = "DECIMAL"
    DOUBLE = "DOUBLE"
    PUNCT = "PUNCT"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"


_KEYWORDS = frozenset(
    """
    SELECT ASK CONSTRUCT DESCRIBE WHERE FROM NAMED PREFIX BASE
    DISTINCT REDUCED AS GROUP BY HAVING ORDER ASC DESC LIMIT OFFSET
    OPTIONAL UNION MINUS FILTER BIND VALUES GRAPH SERVICE
    A TRUE FALSE IN NOT EXISTS UNDEF
    COUNT SUM AVG MIN MAX SAMPLE GROUP_CONCAT SEPARATOR
    STR LANG LANGMATCHES DATATYPE BOUND IRI URI BNODE
    ABS CEIL FLOOR ROUND CONCAT SUBSTR STRLEN REPLACE
    UCASE LCASE CONTAINS STRSTARTS STRENDS STRBEFORE STRAFTER
    ENCODE_FOR_URI COALESCE IF SAMETERM
    ISIRI ISURI ISBLANK ISLITERAL ISNUMERIC REGEX
    """.split()
)

# Multi-char punctuation, longest first.
_PUNCT2 = ("<=", ">=", "!=", "&&", "||", "^^")
_PUNCT1 = "{}()[],.;*=<>!+-/?|&^"


def _is_pname_char(char: str) -> bool:
    return char.isalnum() or char in "_-."


def tokenize(text: str) -> List[Token]:
    """Tokenize a SPARQL query; raises :class:`SparqlSyntaxError`."""
    return list(_tokenize(text))


def _tokenize(text: str) -> Iterator[Token]:
    pos = 0
    line = 1
    line_start = 0
    length = len(text)

    def location() -> tuple[int, int]:
        return line, pos - line_start + 1

    def error(message: str) -> SparqlSyntaxError:
        loc = location()
        return SparqlSyntaxError(message, loc[0], loc[1])

    while pos < length:
        char = text[pos]
        # Whitespace / newlines
        if char == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue
        if char in " \t\r":
            pos += 1
            continue
        # Comments
        if char == "#":
            end = text.find("\n", pos)
            pos = length if end < 0 else end
            continue
        tok_line, tok_col = location()
        # Variables (a bare '?' is the zero-or-one path operator)
        if char in "?$":
            start = pos + 1
            end = start
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if end == start:
                if char == "?":
                    yield Token(TokenType.PUNCT, "?", tok_line, tok_col)
                    pos += 1
                    continue
                raise error("empty variable name")
            yield Token(TokenType.VAR, text[start:end], tok_line, tok_col)
            pos = end
            continue
        # IRIs
        if char == "<":
            end = text.find(">", pos + 1)
            newline = text.find("\n", pos + 1)
            if end < 0 or (0 <= newline < end):
                # Not an IRI -> relational operator handled below.
                if pos + 1 < length and text[pos + 1] in "= \t\n?$0123456789":
                    pass
                else:
                    raise error("unterminated IRI")
            else:
                candidate = text[pos + 1 : end]
                # Heuristic disambiguation from the '<' comparison operator:
                # IRIs contain no whitespace/quotes and (in queries) a scheme.
                looks_like_iri = (
                    not any(c in candidate for c in ' \t"{}|^`<')
                    and (":" in candidate or candidate == "")
                )
                if looks_like_iri:
                    yield Token(TokenType.IRI, candidate, tok_line, tok_col)
                    pos = end + 1
                    continue
            # fall through: '<' as comparison
        # Strings
        if char in "\"'":
            quote = char
            if text.startswith(quote * 3, pos):
                end = text.find(quote * 3, pos + 3)
                if end < 0:
                    raise error("unterminated long string")
                raw = text[pos + 3 : end]
                yield Token(TokenType.STRING, _unescape(raw, error), tok_line, tok_col)
                line += raw.count("\n")
                pos = end + 3
                continue
            end = pos + 1
            chars: List[str] = []
            while True:
                if end >= length or text[end] == "\n":
                    raise error("unterminated string")
                c = text[end]
                if c == quote:
                    break
                if c == "\\":
                    if end + 1 >= length:
                        raise error("dangling escape")
                    chars.append(text[end : end + 2])
                    end += 2
                else:
                    chars.append(c)
                    end += 1
            yield Token(
                TokenType.STRING, _unescape("".join(chars), error), tok_line, tok_col
            )
            pos = end + 1
            continue
        # Language tags
        if char == "@":
            start = pos + 1
            end = start
            while end < length and (text[end].isalnum() or text[end] == "-"):
                end += 1
            if end == start:
                raise error("empty language tag")
            yield Token(TokenType.LANGTAG, text[start:end], tok_line, tok_col)
            pos = end
            continue
        # Blank nodes
        if char == "_" and pos + 1 < length and text[pos + 1] == ":":
            start = pos + 2
            end = start
            while end < length and _is_pname_char(text[end]):
                end += 1
            yield Token(TokenType.BNODE, text[start:end], tok_line, tok_col)
            pos = end
            continue
        # Numbers
        if char.isdigit() or (
            char == "." and pos + 1 < length and text[pos + 1].isdigit()
        ):
            end = pos
            saw_dot = saw_exp = False
            while end < length:
                c = text[end]
                if c.isdigit():
                    end += 1
                elif c == "." and not saw_dot and not saw_exp:
                    # Only part of the number if a digit follows.
                    if end + 1 < length and text[end + 1].isdigit():
                        saw_dot = True
                        end += 1
                    else:
                        break
                elif c in "eE" and not saw_exp and end > pos:
                    nxt = text[end + 1 : end + 2]
                    if nxt.isdigit() or (
                        nxt in "+-" and text[end + 2 : end + 3].isdigit()
                    ):
                        saw_exp = True
                        end += 2 if nxt in "+-" else 1
                    else:
                        break
                else:
                    break
            value = text[pos:end]
            if saw_exp:
                token_type = TokenType.DOUBLE
            elif saw_dot:
                token_type = TokenType.DECIMAL
            else:
                token_type = TokenType.INTEGER
            yield Token(token_type, value, tok_line, tok_col)
            pos = end
            continue
        # Multi-char punctuation
        matched = False
        for punct in _PUNCT2:
            if text.startswith(punct, pos):
                yield Token(TokenType.PUNCT, punct, tok_line, tok_col)
                pos += len(punct)
                matched = True
                break
        if matched:
            continue
        # Words: keywords or prefixed names
        if char.isalpha() or char == "_":
            end = pos
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[pos:end]
            # Prefixed name: word followed directly by ':'
            if end < length and text[end] == ":":
                local_start = end + 1
                local_end = local_start
                while local_end < length and _is_pname_char(text[local_end]):
                    local_end += 1
                local = text[local_start:local_end]
                # A trailing '.' is a statement terminator, not name part.
                while local.endswith("."):
                    local = local[:-1]
                    local_end -= 1
                yield Token(
                    TokenType.PNAME, f"{word}:{local}", tok_line, tok_col
                )
                pos = local_end
                continue
            upper = word.upper()
            if upper in _KEYWORDS:
                yield Token(TokenType.KEYWORD, upper, tok_line, tok_col)
            else:
                raise error(f"unexpected word: {word!r}")
            pos = end
            continue
        # Bare ':' prefixed name (default prefix)
        if char == ":":
            local_start = pos + 1
            local_end = local_start
            while local_end < length and _is_pname_char(text[local_end]):
                local_end += 1
            local = text[local_start:local_end]
            while local.endswith("."):
                local = local[:-1]
                local_end -= 1
            yield Token(TokenType.PNAME, f":{local}", tok_line, tok_col)
            pos = local_end
            continue
        # Single-char punctuation
        if char in _PUNCT1:
            yield Token(TokenType.PUNCT, char, tok_line, tok_col)
            pos += 1
            continue
        raise error(f"unexpected character: {char!r}")
    yield Token(TokenType.EOF, "", line, pos - line_start + 1)


_ESCAPE_MAP = {
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "b": "\b",
    "f": "\f",
    "\\": "\\",
    '"': '"',
    "'": "'",
}


def _unescape(raw: str, error) -> str:
    if "\\" not in raw:
        return raw
    out: List[str] = []
    i = 0
    while i < len(raw):
        char = raw[i]
        if char != "\\":
            out.append(char)
            i += 1
            continue
        i += 1
        if i >= len(raw):
            raise error("dangling escape in string")
        esc = raw[i]
        i += 1
        if esc in _ESCAPE_MAP:
            out.append(_ESCAPE_MAP[esc])
        elif esc == "u":
            out.append(chr(int(raw[i : i + 4], 16)))
            i += 4
        elif esc == "U":
            out.append(chr(int(raw[i : i + 8], 16)))
            i += 8
        else:
            raise error(f"unknown string escape: \\{esc}")
    return "".join(out)
