"""Cost-based rewriting of SPARQL algebra trees.

The optimizer is a pipeline of independent passes, each taking an
algebra tree and returning a (possibly) rewritten tree plus human-readable
notes about what it changed.  Passes never mutate their input — rewritten
trees share unchanged subtrees with the original, which lets the plan
cache hold both the raw and the optimized plan of one query.

Passes, in pipeline order:

``constant_folding``
    Evaluates variable-free (sub-)expressions at plan time.  A filter
    that folds to TRUE is dropped; one that folds to FALSE (or to a type
    error) replaces its input with an empty table that still declares the
    input's variables, so ``SELECT *`` keeps its columns.

``bgp_merge``
    Flattens ``Join(BGP, BGP)`` chains produced by translation into a
    single basic graph pattern, giving the later passes the full join
    space to work with.

``filter_pushdown``
    Moves filters as close to the data as possible: below joins when one
    side certainly binds all of the condition's variables, into every
    branch of a UNION, below BIND when the bound variable is not
    referenced, and *into* BGPs — where the evaluator applies them
    mid-join, before remaining patterns are expanded.  Conjunctions are
    split so each conjunct travels independently.  Conditions containing
    EXISTS or aggregates never move.

``projection_pushdown``
    Live-variable analysis from the root down; join inputs are wrapped
    in projections that drop columns nothing above will ever read, which
    shrinks every intermediate binding the join produces.

``stats_reorder``
    Statistics-driven join ordering.  Per-predicate/per-class cardinality
    summaries (:class:`repro.rdf.stats.GraphStatistics`) replace the
    evaluator's bound-position heuristic: BGP patterns are greedily
    ordered by estimated result size, and join operands are swapped so
    the smaller side is materialised first.

``top_k_fusion``
    Rewrites ``Slice(OrderBy(X))`` with a finite limit into the bounded
    :class:`~repro.sparql.algebra.TopK` heap operator, turning an
    O(n log n) full sort into O(n log k).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import REGISTRY
from ..rdf.terms import Literal, URI
from ..rdf.vocab import RDF
from .algebra import (
    Aggregation,
    AlgebraNode,
    Ask,
    BGP,
    Distinct,
    Extend,
    Filter,
    Join,
    LeftJoin,
    Minus,
    OrderBy,
    Project,
    Reduced,
    Slice,
    TopK,
    Unit,
    Union,
    ValuesTable,
    contains_aggregate,
    expression_variables,
)
from .ast import (
    AggregateExpr,
    BinaryExpr,
    ExistsExpr,
    Expression,
    FunctionCall,
    InExpr,
    PathExpr,
    TermExpr,
    UnaryExpr,
    Var,
)
from .errors import ExpressionError
from .functions import effective_boolean_value, evaluate_expression

if False:  # pragma: no cover - typing only
    from ..rdf.stats import GraphStatistics

__all__ = [
    "OptimizationReport",
    "PASS_NAMES",
    "optimize",
]

_OPTIMIZER_RUNS_TOTAL = REGISTRY.counter(
    "repro_optimizer_runs_total", "Algebra trees run through the optimizer pipeline"
)
_OPTIMIZER_REWRITES_TOTAL = REGISTRY.counter(
    "repro_optimizer_rewrites_total",
    "Individual rewrites applied, by optimizer pass",
    labelnames=("pass",),
)

_RDF_TYPE = RDF.term("type")


@dataclass
class OptimizationReport:
    """What the optimizer did to one plan: ``(pass, detail)`` notes."""

    notes: List[Tuple[str, str]] = field(default_factory=list)

    def add(self, pass_name: str, detail: str) -> None:
        self.notes.append((pass_name, detail))
        _OPTIMIZER_REWRITES_TOTAL.labels(**{"pass": pass_name}).inc()

    def passes_applied(self) -> List[str]:
        seen: List[str] = []
        for pass_name, _ in self.notes:
            if pass_name not in seen:
                seen.append(pass_name)
        return seen

    def __bool__(self) -> bool:
        return bool(self.notes)


# ----------------------------------------------------------------------
# Expression analysis
# ----------------------------------------------------------------------

#: Functions whose value is not a pure function of their arguments.
_NONDETERMINISTIC_FUNCTIONS = {"BNODE", "RAND", "NOW", "UUID", "STRUUID"}


def _contains_exists(expression: Expression) -> bool:
    if isinstance(expression, ExistsExpr):
        return True
    if isinstance(expression, BinaryExpr):
        return _contains_exists(expression.left) or _contains_exists(expression.right)
    if isinstance(expression, UnaryExpr):
        return _contains_exists(expression.operand)
    if isinstance(expression, FunctionCall):
        return any(_contains_exists(arg) for arg in expression.args)
    if isinstance(expression, InExpr):
        return _contains_exists(expression.operand) or any(
            _contains_exists(choice) for choice in expression.choices
        )
    if isinstance(expression, AggregateExpr):
        return expression.argument is not None and _contains_exists(
            expression.argument
        )
    return False


def _contains_nondeterminism(expression: Expression) -> bool:
    if isinstance(expression, FunctionCall):
        if expression.name.upper() in _NONDETERMINISTIC_FUNCTIONS:
            return True
        return any(_contains_nondeterminism(arg) for arg in expression.args)
    if isinstance(expression, BinaryExpr):
        return _contains_nondeterminism(expression.left) or _contains_nondeterminism(
            expression.right
        )
    if isinstance(expression, UnaryExpr):
        return _contains_nondeterminism(expression.operand)
    if isinstance(expression, InExpr):
        return _contains_nondeterminism(expression.operand) or any(
            _contains_nondeterminism(choice) for choice in expression.choices
        )
    return False


def _movable(expression: Expression) -> bool:
    """Whether a filter condition may be relocated by the optimizer.

    EXISTS reads the *whole* enclosing binding (its compatibility check
    is not limited to the variables the expression mentions), aggregates
    only make sense at their grouping level, and nondeterministic
    functions must be evaluated exactly where — and as often as — the
    author placed them.
    """
    return not (
        _contains_exists(expression)
        or contains_aggregate(expression)
        or _contains_nondeterminism(expression)
    )


def _split_conjunction(expression: Expression) -> List[Expression]:
    """Top-level ``&&`` conjuncts (filter-context equivalence only)."""
    if isinstance(expression, BinaryExpr) and expression.op == "&&":
        return _split_conjunction(expression.left) + _split_conjunction(
            expression.right
        )
    return [expression]


# ----------------------------------------------------------------------
# Variable analysis
# ----------------------------------------------------------------------


def _possible_vars(node: AlgebraNode) -> set:
    """Over-approximation of variables that may appear in solutions."""
    if isinstance(node, BGP):
        return node.variables()
    if isinstance(node, (Join, LeftJoin)):
        return _possible_vars(node.left) | _possible_vars(node.right)
    if isinstance(node, Minus):
        return _possible_vars(node.left)
    if isinstance(node, Filter):
        return _possible_vars(node.input)
    if isinstance(node, Union):
        names: set = set()
        for branch in node.branches:
            names |= _possible_vars(branch)
        return names
    if isinstance(node, Extend):
        return _possible_vars(node.input) | {node.var.name}
    if isinstance(node, ValuesTable):
        return {var.name for var in node.variables}
    if isinstance(node, Aggregation):
        return {projection.var.name for projection in node.projections}
    if isinstance(node, Project):
        if node.variables is None:
            return _possible_vars(node.input)
        return {var.name for var in node.variables}
    if isinstance(node, (Distinct, Reduced, OrderBy, Slice, TopK)):
        return _possible_vars(node.input)
    return set()


def _certain_vars(node: AlgebraNode) -> set:
    """Under-approximation of variables bound in *every* solution."""
    if isinstance(node, BGP):
        # Property-path endpoints always bind; every position in a plain
        # triple pattern binds on a match.
        return node.variables()
    if isinstance(node, Join):
        return _certain_vars(node.left) | _certain_vars(node.right)
    if isinstance(node, (LeftJoin, Minus)):
        return _certain_vars(node.left)
    if isinstance(node, Filter):
        return _certain_vars(node.input)
    if isinstance(node, Union):
        branches = node.branches
        if not branches:
            return set()
        names = _certain_vars(branches[0])
        for branch in branches[1:]:
            names &= _certain_vars(branch)
        return names
    if isinstance(node, Extend):
        # BIND leaves the variable unbound on expression error, so the
        # extension variable is never certain.
        return _certain_vars(node.input)
    if isinstance(node, ValuesTable):
        names: set = set()
        for index, var in enumerate(node.variables):
            if all(row[index] is not None for row in node.rows):
                names.add(var.name)
        return names if node.rows else set()
    if isinstance(node, Project):
        inner = _certain_vars(node.input)
        if node.variables is None:
            return inner
        return inner & {var.name for var in node.variables}
    if isinstance(node, (Distinct, Reduced, OrderBy, Slice, TopK)):
        return _certain_vars(node.input)
    return set()


# ----------------------------------------------------------------------
# Pass: constant folding
# ----------------------------------------------------------------------


def _fold_expression(expression: Expression) -> Expression:
    """Replace variable-free deterministic subexpressions with their value."""
    if isinstance(expression, TermExpr):
        return expression
    if (
        not expression_variables(expression)
        and _movable(expression)
        and not isinstance(expression, AggregateExpr)
    ):
        try:
            value = evaluate_expression(expression, {})
        except ExpressionError:
            # Errors are part of filter semantics (the row is rejected);
            # leave the expression for runtime so EBV handling stays
            # uniform.
            return expression
        if isinstance(value, (URI, Literal)):
            return TermExpr(value)
        return expression
    if isinstance(expression, BinaryExpr):
        left = _fold_expression(expression.left)
        right = _fold_expression(expression.right)
        if left is not expression.left or right is not expression.right:
            return BinaryExpr(expression.op, left, right)
        return expression
    if isinstance(expression, UnaryExpr):
        operand = _fold_expression(expression.operand)
        if operand is not expression.operand:
            return UnaryExpr(expression.op, operand)
        return expression
    if isinstance(expression, FunctionCall):
        args = [_fold_expression(arg) for arg in expression.args]
        if any(new is not old for new, old in zip(args, expression.args)):
            return FunctionCall(expression.name, tuple(args))
        return expression
    if isinstance(expression, InExpr):
        operand = _fold_expression(expression.operand)
        choices = [_fold_expression(choice) for choice in expression.choices]
        if operand is not expression.operand or any(
            new is not old for new, old in zip(choices, expression.choices)
        ):
            return InExpr(operand, tuple(choices), expression.negated)
        return expression
    return expression


def _empty_table_like(node: AlgebraNode) -> ValuesTable:
    """An empty table declaring the node's variables (keeps SELECT * sane)."""
    return ValuesTable([Var(name) for name in sorted(_possible_vars(node))], [])


def _pass_constant_folding(
    node: AlgebraNode, report: OptimizationReport, stats
) -> AlgebraNode:
    def rewrite(node: AlgebraNode) -> AlgebraNode:
        node = _rewrite_children(node, rewrite)
        if isinstance(node, Filter):
            condition = _fold_expression(node.condition)
            if isinstance(condition, TermExpr):
                try:
                    truth = effective_boolean_value(condition.term)
                except ExpressionError:
                    truth = False
                if truth:
                    report.add("constant_folding", "dropped always-true filter")
                    return node.input
                report.add(
                    "constant_folding",
                    "replaced always-false filter with empty table",
                )
                return _empty_table_like(node.input)
            if condition is not node.condition:
                report.add("constant_folding", f"folded constants in {condition}")
                return Filter(condition, node.input)
        return node

    return rewrite(node)


# ----------------------------------------------------------------------
# Pass: BGP merge
# ----------------------------------------------------------------------


def _pass_bgp_merge(
    node: AlgebraNode, report: OptimizationReport, stats
) -> AlgebraNode:
    def rewrite(node: AlgebraNode) -> AlgebraNode:
        node = _rewrite_children(node, rewrite)
        if isinstance(node, Join):
            if isinstance(node.left, Unit):
                return node.right
            if isinstance(node.right, Unit):
                return node.left
            if isinstance(node.left, BGP) and isinstance(node.right, BGP):
                merged = BGP(
                    node.left.patterns + node.right.patterns,
                    node.left.filters + node.right.filters,
                )
                report.add(
                    "bgp_merge",
                    f"merged adjacent BGPs ({len(node.left.patterns)}+"
                    f"{len(node.right.patterns)} patterns)",
                )
                return merged
        return node

    return rewrite(node)


# ----------------------------------------------------------------------
# Pass: filter pushdown
# ----------------------------------------------------------------------


def _push_filter(
    condition: Expression, node: AlgebraNode, report: OptimizationReport
) -> Optional[AlgebraNode]:
    """Push one movable condition into ``node``; None when it can't sink."""
    needed = expression_variables(condition)
    if isinstance(node, BGP):
        if needed <= node.variables():
            report.add("filter_pushdown", f"inlined FILTER({condition}) into BGP")
            return BGP(node.patterns, node.filters + (condition,), node.preordered)
        return None
    if isinstance(node, Join):
        if needed <= _certain_vars(node.left):
            left = _push_filter(condition, node.left, report)
            if left is None:
                left = Filter(condition, node.left)
                report.add(
                    "filter_pushdown", f"pushed FILTER({condition}) below join"
                )
            return Join(left, node.right)
        if needed <= _certain_vars(node.right):
            right = _push_filter(condition, node.right, report)
            if right is None:
                right = Filter(condition, node.right)
                report.add(
                    "filter_pushdown", f"pushed FILTER({condition}) below join"
                )
            return Join(node.left, right)
        return None
    if isinstance(node, LeftJoin):
        # Only the required side: pushing into the optional side would
        # turn non-matches into matches (and vice versa).
        if needed <= _certain_vars(node.left):
            left = _push_filter(condition, node.left, report)
            if left is None:
                left = Filter(condition, node.left)
                report.add(
                    "filter_pushdown",
                    f"pushed FILTER({condition}) below OPTIONAL",
                )
            return LeftJoin(left, node.right, node.condition)
        return None
    if isinstance(node, Minus):
        # MINUS passes left rows through unchanged, so the filter can
        # always move below it.
        left = _push_filter(condition, node.left, report)
        if left is None:
            left = Filter(condition, node.left)
            report.add("filter_pushdown", f"moved FILTER({condition}) below MINUS")
        return Minus(left, node.right)
    if isinstance(node, Union):
        branches = []
        for branch in node.branches:
            pushed = _push_filter(condition, branch, report)
            branches.append(pushed if pushed is not None else Filter(condition, branch))
        report.add(
            "filter_pushdown",
            f"distributed FILTER({condition}) over {len(branches)} UNION branches",
        )
        return Union(branches)
    if isinstance(node, Extend):
        if node.var.name not in needed:
            inner = _push_filter(condition, node.input, report)
            if inner is None:
                inner = Filter(condition, node.input)
                report.add(
                    "filter_pushdown", f"moved FILTER({condition}) below BIND"
                )
            return Extend(inner, node.var, node.expression)
        return None
    if isinstance(node, Filter):
        inner = _push_filter(condition, node.input, report)
        if inner is not None:
            return Filter(node.condition, inner)
        return None
    return None


def _pass_filter_pushdown(
    node: AlgebraNode, report: OptimizationReport, stats
) -> AlgebraNode:
    def rewrite(node: AlgebraNode) -> AlgebraNode:
        node = _rewrite_children(node, rewrite)
        if not isinstance(node, Filter):
            return node
        remaining: List[Expression] = []
        current = node.input
        for conjunct in _split_conjunction(node.condition):
            if isinstance(conjunct, TermExpr):
                # A constant conjunct either gates the whole filter or
                # contributes nothing (constant folding got it here).
                try:
                    truth = effective_boolean_value(conjunct.term)
                except ExpressionError:
                    truth = False
                if truth:
                    report.add("filter_pushdown", "dropped constant-true conjunct")
                    continue
                report.add(
                    "filter_pushdown",
                    "constant-false conjunct: replaced input with empty table",
                )
                return _empty_table_like(node.input)
            if not _movable(conjunct):
                remaining.append(conjunct)
                continue
            pushed = _push_filter(conjunct, current, report)
            if pushed is None:
                remaining.append(conjunct)
            else:
                current = pushed
        for conjunct in reversed(remaining):
            current = Filter(conjunct, current)
        return current

    return rewrite(node)


# ----------------------------------------------------------------------
# Pass: projection pushdown
# ----------------------------------------------------------------------


def _project_to(node: AlgebraNode, live: set, report: OptimizationReport) -> AlgebraNode:
    """Wrap ``node`` in a projection when it can bind non-live variables."""
    possible = _possible_vars(node)
    extra = possible - live
    if not extra:
        return node
    keep = sorted(possible & live)
    report.add(
        "projection_pushdown",
        f"pruned {{{', '.join('?' + name for name in sorted(extra))}}} "
        f"below join (kept {len(keep)})",
    )
    return Project(node, [Var(name) for name in keep])


def _pass_projection_pushdown(
    node: AlgebraNode, report: OptimizationReport, stats
) -> AlgebraNode:
    def condition_vars(expression: Optional[Expression]) -> set:
        if expression is None:
            return set()
        if _contains_exists(expression):
            # EXISTS compares against the *entire* binding; nothing that
            # feeds this expression may be pruned.
            return None  # type: ignore[return-value]
        return expression_variables(expression)

    def prune(node: AlgebraNode, live: Optional[set]) -> AlgebraNode:
        """Rewrite with the set of variables anything above may read.

        ``live=None`` means "everything" (analysis gave up above).
        """
        if isinstance(node, Project):
            if node.variables is None:
                return Project(prune(node.input, None), None, node.extensions)
            inner_live = {var.name for var in node.variables}
            for projection in node.extensions:
                vars_of = condition_vars(projection.expression)
                if vars_of is None:
                    return Project(prune(node.input, None), node.variables, node.extensions)
                inner_live |= vars_of
            return Project(prune(node.input, inner_live), node.variables, node.extensions)
        if isinstance(node, Filter):
            vars_of = condition_vars(node.condition)
            inner = None if live is None or vars_of is None else live | vars_of
            return Filter(node.condition, prune(node.input, inner))
        if isinstance(node, (OrderBy, TopK)):
            inner = live
            if inner is not None:
                for cond in node.conditions:
                    vars_of = condition_vars(cond.expression)
                    if vars_of is None:
                        inner = None
                        break
                    inner = inner | vars_of
            pruned = prune(node.input, inner)
            if isinstance(node, OrderBy):
                return OrderBy(pruned, node.conditions)
            return TopK(pruned, node.conditions, node.limit, node.offset)
        if isinstance(node, Slice):
            return Slice(prune(node.input, live), node.offset, node.limit)
        if isinstance(node, Distinct):
            # Deduplication reads every column: keep all of them.
            return Distinct(prune(node.input, None))
        if isinstance(node, Reduced):
            return Reduced(prune(node.input, None))
        if isinstance(node, Ask):
            return Ask(prune(node.input, set()))
        if isinstance(node, Aggregation):
            inner: Optional[set] = set()
            for key in node.keys:
                expression = key.expression if not isinstance(key, Expression) else key
                vars_of = condition_vars(expression)
                inner = None if inner is None or vars_of is None else inner | vars_of
            for projection in node.projections:
                if projection.expression is None:
                    continue
                if _aggregate_reads_whole_row(projection.expression):
                    inner = None
                vars_of = condition_vars(projection.expression)
                inner = None if inner is None or vars_of is None else inner | vars_of
            for having in node.having:
                if _aggregate_reads_whole_row(having):
                    inner = None
                vars_of = condition_vars(having)
                inner = None if inner is None or vars_of is None else inner | vars_of
            return Aggregation(
                prune(node.input, inner), node.keys, node.projections, node.having
            )
        if isinstance(node, Join):
            if live is None:
                return Join(prune(node.left, None), prune(node.right, None))
            left_possible = _possible_vars(node.left)
            right_possible = _possible_vars(node.right)
            shared = left_possible & right_possible
            needed_left = (live | shared) & left_possible
            needed_right = (live | shared) & right_possible
            left = _project_to(prune(node.left, needed_left), needed_left, report)
            right = _project_to(prune(node.right, needed_right), needed_right, report)
            return Join(left, right)
        if isinstance(node, LeftJoin):
            vars_of = condition_vars(node.condition)
            if live is None or vars_of is None:
                return LeftJoin(
                    prune(node.left, None), prune(node.right, None), node.condition
                )
            left_possible = _possible_vars(node.left)
            right_possible = _possible_vars(node.right)
            shared = left_possible & right_possible
            needed_left = (live | shared | vars_of) & left_possible
            needed_right = (live | shared | vars_of) & right_possible
            # The required side's rows survive unwrapped on non-match, so
            # its projection must keep every live column; the optional
            # side only contributes its needed columns.
            left = _project_to(prune(node.left, needed_left), needed_left, report)
            right = _project_to(prune(node.right, needed_right), needed_right, report)
            return LeftJoin(left, right, node.condition)
        if isinstance(node, Minus):
            left_possible = _possible_vars(node.left)
            right_possible = _possible_vars(node.right)
            shared = left_possible & right_possible
            if live is None:
                needed_left: Optional[set] = None
            else:
                needed_left = (live | shared) & left_possible
            # Exclusion only looks at columns both sides can bind.
            right = _project_to(prune(node.right, shared), shared, report)
            left = prune(node.left, needed_left)
            if needed_left is not None:
                left = _project_to(left, needed_left, report)
            return Minus(left, right)
        if isinstance(node, Union):
            return Union([prune(branch, live) for branch in node.branches])
        if isinstance(node, Extend):
            if live is not None and node.var.name not in live:
                report.add(
                    "projection_pushdown",
                    f"dropped dead BIND(... AS ?{node.var.name})",
                )
                return prune(node.input, live)
            vars_of = condition_vars(node.expression)
            inner = None if live is None or vars_of is None else (live - {node.var.name}) | vars_of
            return Extend(prune(node.input, inner), node.var, node.expression)
        # Leaves (BGP, ValuesTable, Unit) and anything unknown: unchanged.
        return node

    return prune(node, None)


def _aggregate_reads_whole_row(expression: Expression) -> bool:
    """True for aggregates like ``COUNT(DISTINCT *)`` that read all columns."""
    if isinstance(expression, AggregateExpr):
        return expression.argument is None and expression.distinct
    if isinstance(expression, BinaryExpr):
        return _aggregate_reads_whole_row(expression.left) or _aggregate_reads_whole_row(
            expression.right
        )
    if isinstance(expression, UnaryExpr):
        return _aggregate_reads_whole_row(expression.operand)
    if isinstance(expression, FunctionCall):
        return any(_aggregate_reads_whole_row(arg) for arg in expression.args)
    if isinstance(expression, InExpr):
        return _aggregate_reads_whole_row(expression.operand) or any(
            _aggregate_reads_whole_row(choice) for choice in expression.choices
        )
    return False


# ----------------------------------------------------------------------
# Pass: statistics-driven join reordering
# ----------------------------------------------------------------------


def _pattern_estimate(pattern, bound: set, stats: "GraphStatistics") -> float:
    subject_bound = not isinstance(pattern.subject, Var) or pattern.subject.name in bound
    object_bound = not isinstance(pattern.object, Var) or pattern.object.name in bound
    predicate = None
    object_class = None
    if isinstance(pattern.predicate, PathExpr):
        # Paths have no per-predicate statistics; assume the whole graph.
        return stats.triple_pattern_cardinality(subject_bound, None, object_bound)
    if not isinstance(pattern.predicate, Var):
        predicate = pattern.predicate
        if predicate == _RDF_TYPE and isinstance(pattern.object, URI):
            object_class = pattern.object
    return stats.triple_pattern_cardinality(
        subject_bound, predicate, object_bound, object_class
    )


def _order_bgp(bgp: BGP, stats: "GraphStatistics") -> Tuple[List, float]:
    """Greedy cardinality-ordered patterns plus the estimated result size."""
    remaining = list(bgp.patterns)
    ordered: List = []
    bound: set = set()
    total = 1.0
    while remaining:
        best_index = 0
        best_cost = None
        for index, pattern in enumerate(remaining):
            cost = _pattern_estimate(pattern, bound, stats)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound |= chosen.variables()
        total *= max(best_cost, 0.0)
    return ordered, total


def _estimate_node(node: AlgebraNode, stats: "GraphStatistics") -> float:
    if isinstance(node, BGP):
        _, total = _order_bgp(node, stats)
        return total
    if isinstance(node, Join):
        return _estimate_node(node.left, stats) * _estimate_node(node.right, stats)
    if isinstance(node, (LeftJoin, Minus)):
        return _estimate_node(node.left, stats)
    if isinstance(node, Union):
        return sum(_estimate_node(branch, stats) for branch in node.branches)
    if isinstance(node, ValuesTable):
        return float(len(node.rows))
    if isinstance(node, Unit):
        return 1.0
    if isinstance(node, (Filter, Extend, Project, Distinct, Reduced, OrderBy)):
        return _estimate_node(node.input, stats)
    if isinstance(node, (Slice, TopK)):
        inner = _estimate_node(node.input, stats)
        limit = getattr(node, "limit", None)
        if limit is not None:
            return min(inner, float(limit))
        return inner
    if isinstance(node, Aggregation):
        return _estimate_node(node.input, stats)
    return 1.0


def _pass_stats_reorder(
    node: AlgebraNode, report: OptimizationReport, stats: Optional["GraphStatistics"]
) -> AlgebraNode:
    if stats is None:
        return node

    def rewrite(node: AlgebraNode) -> AlgebraNode:
        node = _rewrite_children(node, rewrite)
        if isinstance(node, BGP) and len(node.patterns) > 1:
            ordered, _ = _order_bgp(node, stats)
            if tuple(ordered) != node.patterns:
                report.add(
                    "stats_reorder",
                    f"reordered {len(ordered)} BGP patterns by estimated cardinality",
                )
            return BGP(tuple(ordered), node.filters, preordered=True)
        if isinstance(node, BGP):
            return BGP(node.patterns, node.filters, preordered=True)
        if isinstance(node, Join):
            left_estimate = _estimate_node(node.left, stats)
            right_estimate = _estimate_node(node.right, stats)
            if right_estimate < left_estimate:
                report.add(
                    "stats_reorder",
                    f"swapped join operands (est. {right_estimate:.0f} vs "
                    f"{left_estimate:.0f} rows)",
                )
                return Join(node.right, node.left)
        return node

    return rewrite(node)


# ----------------------------------------------------------------------
# Pass: top-k fusion
# ----------------------------------------------------------------------


def _pass_top_k_fusion(
    node: AlgebraNode, report: OptimizationReport, stats
) -> AlgebraNode:
    def rewrite(node: AlgebraNode) -> AlgebraNode:
        node = _rewrite_children(node, rewrite)
        if (
            isinstance(node, Slice)
            and node.limit is not None
            and isinstance(node.input, OrderBy)
        ):
            report.add(
                "top_k_fusion",
                f"fused ORDER BY + LIMIT {node.limit} into bounded top-k heap",
            )
            return TopK(
                node.input.input,
                node.input.conditions,
                limit=node.limit,
                offset=node.offset,
            )
        return node

    return rewrite(node)


# ----------------------------------------------------------------------
# Generic traversal
# ----------------------------------------------------------------------


def _rewrite_children(
    node: AlgebraNode, rewrite: Callable[[AlgebraNode], AlgebraNode]
) -> AlgebraNode:
    """Rebuild ``node`` with rewritten children (sharing unchanged ones)."""
    if isinstance(node, Join):
        left, right = rewrite(node.left), rewrite(node.right)
        if left is not node.left or right is not node.right:
            return Join(left, right)
        return node
    if isinstance(node, LeftJoin):
        left, right = rewrite(node.left), rewrite(node.right)
        if left is not node.left or right is not node.right:
            return LeftJoin(left, right, node.condition)
        return node
    if isinstance(node, Minus):
        left, right = rewrite(node.left), rewrite(node.right)
        if left is not node.left or right is not node.right:
            return Minus(left, right)
        return node
    if isinstance(node, Filter):
        inner = rewrite(node.input)
        if inner is not node.input:
            return Filter(node.condition, inner)
        return node
    if isinstance(node, Union):
        branches = [rewrite(branch) for branch in node.branches]
        if any(new is not old for new, old in zip(branches, node.branches)):
            return Union(branches)
        return node
    if isinstance(node, Extend):
        inner = rewrite(node.input)
        if inner is not node.input:
            return Extend(inner, node.var, node.expression)
        return node
    if isinstance(node, Aggregation):
        inner = rewrite(node.input)
        if inner is not node.input:
            return Aggregation(inner, node.keys, node.projections, node.having)
        return node
    if isinstance(node, Project):
        inner = rewrite(node.input)
        if inner is not node.input:
            return Project(inner, node.variables, node.extensions)
        return node
    if isinstance(node, Distinct):
        inner = rewrite(node.input)
        return Distinct(inner) if inner is not node.input else node
    if isinstance(node, Reduced):
        inner = rewrite(node.input)
        return Reduced(inner) if inner is not node.input else node
    if isinstance(node, OrderBy):
        inner = rewrite(node.input)
        return OrderBy(inner, node.conditions) if inner is not node.input else node
    if isinstance(node, Slice):
        inner = rewrite(node.input)
        if inner is not node.input:
            return Slice(inner, node.offset, node.limit)
        return node
    if isinstance(node, TopK):
        inner = rewrite(node.input)
        if inner is not node.input:
            return TopK(inner, node.conditions, node.limit, node.offset)
        return node
    if isinstance(node, Ask):
        inner = rewrite(node.input)
        return Ask(inner) if inner is not node.input else node
    return node


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------

_PASSES: Dict[str, Callable] = {
    "constant_folding": _pass_constant_folding,
    "bgp_merge": _pass_bgp_merge,
    "filter_pushdown": _pass_filter_pushdown,
    "projection_pushdown": _pass_projection_pushdown,
    "stats_reorder": _pass_stats_reorder,
    "top_k_fusion": _pass_top_k_fusion,
}

#: Pipeline order; also the set of valid names for the ``passes`` argument.
PASS_NAMES: Tuple[str, ...] = tuple(_PASSES)


def optimize(
    node: AlgebraNode,
    graph=None,
    stats: Optional["GraphStatistics"] = None,
    passes: Optional[Sequence[str]] = None,
) -> Tuple[AlgebraNode, OptimizationReport]:
    """Run the rewrite pipeline over an algebra tree.

    ``graph`` (or a prebuilt ``stats`` summary) enables the cost-based
    reorder pass; without either, the purely structural passes still run.
    ``passes`` restricts the pipeline to a subset (for ablation).  The
    input tree is never mutated.
    """
    if stats is None and graph is not None:
        stats = graph.statistics()
    selected = PASS_NAMES if passes is None else tuple(passes)
    unknown = [name for name in selected if name not in _PASSES]
    if unknown:
        raise ValueError(f"unknown optimizer pass(es): {', '.join(unknown)}")
    report = OptimizationReport()
    for name in PASS_NAMES:
        if name not in selected:
            continue
        node = _PASSES[name](node, report, stats)
    _OPTIMIZER_RUNS_TOTAL.inc()
    return node, report
