"""Property-path evaluation (SPARQL 1.1 subset) in dictionary-ID space.

Supported operators: IRI steps, inverse ``^p``, sequence ``p1/p2``,
alternative ``p1|p2``, and the closures ``p*``, ``p+``, ``p?``.

Since PR 8 this module is the engine's *path kernel*: a path expression
is first **lowered** (:func:`lower_path`) from its AST into a small
algebra of ID-space hop primitives — predicate IDs instead of URIs, so a
hop is a ``triples_ids`` index probe and a closure is a breadth-first
search over plain ``int`` frontiers.  On top of the kernel sit
**preemptable pair iterators** (:func:`build_pair_iterator`): explicit
objects with a bounded ``next_pair()`` step and ``save()``/``load()``
state (sage-engine's ``iterators/ppaths`` shape), which is what the
suspendable physical operator :class:`repro.sparql.physical.ppath.PathScanOp`
drives one time-slice at a time.  All iteration is in **canonical
sorted-ID order** — hops return sorted successor lists, the closure BFS
expands them deterministically, and the all-nodes walk ascends the
dictionary ID range — so a suspended traversal resumes *identically* in
any process mapping the same store (the pre-PR 8 kernel iterated
unordered ``set`` objects, whose order is not reproducible in a
respawned worker).

The historical term-space API is kept as a thin wrapper for the
recursive evaluator: :func:`eval_path` yields distinct
``(subject, object)`` term pairs by encoding the endpoints, driving the
same pair iterators, and decoding each emitted pair — so both engines
produce the same rows in the same order by construction.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, List, Optional, Tuple, Union

from ..obs.metrics import REGISTRY
from ..rdf.dictionary import KIND_STRIDE
from ..rdf.graph import Graph
from ..rdf.terms import Term, URI
from .ast import (
    AlternativePath,
    InversePath,
    PathExpr,
    RepeatPath,
    SequencePath,
)
from .errors import SparqlEvalError

__all__ = [
    "eval_path",
    "path_hop",
    "lower_path",
    "hop_ids",
    "iter_node_ids",
    "build_pair_iterator",
    "closure_stats",
    "PairIterator",
]

Path = Union[URI, PathExpr]
Pair = Tuple[Term, Term]
IdPair = Tuple[int, int]

#: The impossible ID: a constant the dictionary never interned.  It
#: routes through the normal index branches and matches nothing.
_UNKNOWN = -1

#: Candidate dictionary IDs probed per ``next_pair()`` call while the
#: all-nodes walk scans for the next graph node (bounds one step of the
#: ``?s p* ?o`` shape the way SCAN_BATCH bounds a flat scan).
NODE_PROBE_BATCH = 64

_PATH_SCANS = REGISTRY.counter(
    "repro_path_scans_total",
    "Path pair-iterators started, by endpoint shape",
    labelnames=("shape",),
)
_PATH_HOPS = REGISTRY.counter(
    "repro_path_hops_total",
    "Frontier node expansions (one path application) in closure BFS",
)
_PATH_FRONTIER = REGISTRY.histogram(
    "repro_path_frontier_size",
    "BFS frontier size observed at each closure expansion",
    buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096),
)
_PATH_VISITED = REGISTRY.histogram(
    "repro_path_visited_nodes",
    "Visited-set cardinality when a closure BFS exhausts",
    buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096),
)


# ----------------------------------------------------------------------
# Lowering: path AST -> ID-space hop algebra
# ----------------------------------------------------------------------
#
# A lowered path is a nested tuple whose head names the primitive:
#
#   ("edge", pid)                     one predicate hop (pid may be -1)
#   ("inv", code)                     follow ``code`` backwards
#   ("seq", (code, ...))              composition, left to right
#   ("alt", (code, ...))              union of alternatives
#   ("closure", code, include_zero, max_one)   * / + / ?
#
# Lowering resolves every IRI step through the dictionary exactly once
# per plan instantiation; predicates absent from the dictionary label no
# graph edge, so they lower to the impossible ID.


def lower_path(path: Path, lookup: Callable[[Term], Optional[int]]):
    """Lower a path expression to ID-space hop primitives."""
    if isinstance(path, URI):
        id = lookup(path)
        return ("edge", _UNKNOWN if id is None else id)
    if isinstance(path, InversePath):
        return ("inv", lower_path(path.inner, lookup))
    if isinstance(path, SequencePath):
        return ("seq", tuple(lower_path(step, lookup) for step in path.steps))
    if isinstance(path, AlternativePath):
        return (
            "alt",
            tuple(lower_path(choice, lookup) for choice in path.choices),
        )
    if isinstance(path, RepeatPath):
        return (
            "closure",
            lower_path(path.inner, lookup),
            path.min_hops == 0,
            path.max_one,
        )
    raise SparqlEvalError(f"unsupported path expression: {path!r}")


# ----------------------------------------------------------------------
# Hop kernel
# ----------------------------------------------------------------------


def hop_ids(graph: Graph, code, node: int, forward: bool = True) -> List[int]:
    """One application of ``code`` from ``node``: sorted successor IDs.

    The sorted order is what makes closure traversal deterministic
    across processes — ``triples_ids`` already enumerates each index in
    canonical ID order, and every set-building composite re-sorts.
    """
    op = code[0]
    if op == "edge":
        pid = code[1]
        if forward:
            return [o for (_s, _p, o) in graph.triples_ids(node, pid, None)]
        return [s for (s, _p, _o) in graph.triples_ids(None, pid, node)]
    if op == "inv":
        return hop_ids(graph, code[1], node, not forward)
    if op == "seq":
        steps = code[1] if forward else tuple(reversed(code[1]))
        current = {node}
        for step in steps:
            following: set = set()
            for member in current:
                following.update(hop_ids(graph, step, member, forward))
            if not following:
                return []
            current = following
        return sorted(current)
    if op == "alt":
        merged: set = set()
        for choice in code[1]:
            merged.update(hop_ids(graph, choice, node, forward))
        return sorted(merged)
    if op == "closure":
        # A closure nested *inside* another path step is evaluated
        # eagerly as one hop (like EXISTS, a bounded non-preemptible
        # island); top-level closures get the incremental BFS iterator.
        return sorted(_closure_set(graph, code, node, forward))
    raise SparqlEvalError(f"unknown lowered path op: {op!r}")


def _closure_set(graph: Graph, code, start: int, forward: bool) -> set:
    """Full reachability of a nested closure from ``start``, as a set."""
    _, inner, include_zero, max_one = code
    if max_one:
        reached = set(hop_ids(graph, inner, start, forward))
        if include_zero:
            reached.add(start)
        return reached
    reached = {start} if include_zero else set()
    visited = {start} if include_zero else set()
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        for target in hop_ids(graph, inner, node, forward):
            if target in visited:
                continue
            visited.add(target)
            reached.add(target)
            frontier.append(target)
    return reached


# ----------------------------------------------------------------------
# Node enumeration (the ``?s p* ?o`` shape)
# ----------------------------------------------------------------------


def _is_graph_node(graph: Graph, id: int) -> bool:
    """Whether ``id`` occurs as a subject or object of any triple."""
    if next(graph.triples_ids(id, None, None), None) is not None:
        return True
    return next(graph.triples_ids(None, None, id), None) is not None


def _kind_counts(graph: Graph) -> List[int]:
    """Interned-term counts in kind order (URI, BNode, Literal)."""
    by_name = graph.dictionary.size_by_kind()
    return [by_name["uri"], by_name["bnode"], by_name["literal"]]


def iter_node_ids(graph: Graph) -> Iterator[int]:
    """All graph nodes (subjects and objects) in canonical ID order.

    Walks the dictionary ID range kind by kind and keeps the IDs that
    occur in at least one triple — an index probe per candidate instead
    of the full-scan node materialisation the pre-PR 8 kernel did.
    Runtime-interned query constants are never graph nodes, so two
    processes whose overlays differ still enumerate identically.
    """
    counts = _kind_counts(graph)
    for kind, count in enumerate(counts):
        base = kind * KIND_STRIDE
        for offset in range(count):
            id = base + offset
            if _is_graph_node(graph, id):
                yield id


# ----------------------------------------------------------------------
# Preemptable pair iterators
# ----------------------------------------------------------------------


def _identity(value):
    return value


class PairIterator:
    """Base of the preemptable ``(subject_id, object_id)`` sources.

    The protocol mirrors the physical layer in miniature:
    :meth:`next_pair` performs one bounded unit of work and returns a
    pair or ``None`` (progress without a result — a filtered candidate,
    a frontier expansion, an exhausted inner loop), ``done`` reports
    exhaustion, and :meth:`save`/:meth:`load` serialise the traversal
    state (frontiers, visited sets, cursors) as JSON-able data.

    ``save(enc)``/``load(state, dec)`` take optional codecs applied to
    every term ID in the state; the physical layer passes the token
    codecs so IDs minted into a process-local overlay cross process
    boundaries as portable term literals.

    ``distinct`` declares that the iterator can never emit the same
    pair twice; the builder adds one top-level dedup wrapper otherwise
    (pair-distinctness is the SPARQL path semantics).
    """

    kind = "pair"
    distinct = False

    def __init__(self):
        self.done = False
        #: ``(hops, peak_frontier, visited)`` carried over from
        #: sub-iterators this composite already discarded; see
        #: :func:`closure_stats`.
        self.spent_stats = (0, 0, 0)

    def _retire(self, child: Optional["PairIterator"]) -> None:
        """Fold a finished sub-iterator's BFS counters into this one."""
        hops, peak, visited = closure_stats(child)
        spent = self.spent_stats
        self.spent_stats = (
            spent[0] + hops,
            max(spent[1], peak),
            spent[2] + visited,
        )

    def next_pair(self) -> Optional[IdPair]:
        raise NotImplementedError

    def save(self, enc=_identity) -> dict:
        state = {"k": self.kind, "done": self.done}
        if self.spent_stats != (0, 0, 0):
            state["spent"] = list(self.spent_stats)
        state.update(self._save(enc))
        return state

    def load(self, state: dict, dec=_identity) -> None:
        if not isinstance(state, dict) or state.get("k") != self.kind:
            raise ValueError(
                f"path iterator state {state!r} does not fit {self.kind!r}"
            )
        self.done = bool(state.get("done"))
        self.spent_stats = tuple(state.get("spent", (0, 0, 0)))
        self._load(state, dec)

    def _save(self, enc) -> dict:
        return {}

    def _load(self, state: dict, dec) -> None:
        pass


class _EdgeIter(PairIterator):
    """Pairs of one predicate edge, endpoint-constrained index scan."""

    kind = "edge"
    distinct = True

    def __init__(self, graph: Graph, pid: int, subject, object):
        super().__init__()
        self.graph = graph
        self.pid = pid
        self.subject = subject
        self.object = object
        self._offset = 0
        self._scan = graph.triples_ids(subject, pid, object)

    def next_pair(self) -> Optional[IdPair]:
        row = next(self._scan, None)
        if row is None:
            self.done = True
            return None
        self._offset += 1
        return (row[0], row[2])

    def _save(self, enc) -> dict:
        return {"offset": self._offset}

    def _load(self, state: dict, dec) -> None:
        offset = int(state.get("offset", 0))
        self._scan = self.graph.triples_ids(self.subject, self.pid, self.object)
        for _ in range(offset):
            if next(self._scan, None) is None:
                break
        self._offset = offset


class _InvIter(PairIterator):
    """``^path``: iterate the inner path with swapped endpoints."""

    kind = "inv"

    def __init__(self, inner: PairIterator):
        super().__init__()
        self.inner = inner
        self.distinct = inner.distinct

    def next_pair(self) -> Optional[IdPair]:
        pair = self.inner.next_pair()
        if pair is None:
            self.done = self.inner.done
            return None
        return (pair[1], pair[0])

    def _save(self, enc) -> dict:
        return {"inner": self.inner.save(enc)}

    def _load(self, state: dict, dec) -> None:
        self.inner.load(state["inner"], dec)


class _SeqIter(PairIterator):
    """``p1/p2/...``: a nested loop, directed from the bound side.

    With the subject bound (or both endpoints free) the head step runs
    outermost and the tail sequence is instantiated per midpoint; with
    only the object bound the tail runs outermost (backward) and the
    head closes each midpoint.  Suspension state is the outer state,
    the current outer pair, and the inner state — the inner iterator is
    rebuilt from its midpoint on load.
    """

    kind = "seq"
    distinct = False

    def __init__(self, graph: Graph, codes, subject, object):
        super().__init__()
        if len(codes) < 2:
            raise SparqlEvalError("sequence path needs at least two steps")
        self.graph = graph
        self.codes = tuple(codes)
        self.subject = subject
        self.object = object
        self.forward = subject is not None or object is None
        if self.forward:
            self._outer = _build_raw(graph, codes[0], subject, None)
        else:
            self._outer = _build_seq_rest(graph, codes[1:], None, object)
        self._current: Optional[IdPair] = None
        self._inner: Optional[PairIterator] = None

    def _make_inner(self, mid: int) -> PairIterator:
        if self.forward:
            return _build_seq_rest(self.graph, self.codes[1:], mid, self.object)
        return _build_raw(self.graph, self.codes[0], None, mid)

    def next_pair(self) -> Optional[IdPair]:
        if self._inner is not None:
            pair = self._inner.next_pair()
            if pair is not None:
                if self.forward:
                    return (self._current[0], pair[1])
                return (pair[0], self._current[1])
            if self._inner.done:
                self._retire(self._inner)
                self._inner = None
                self._current = None
            return None
        if self._outer.done:
            self.done = True
            return None
        outer = self._outer.next_pair()
        if outer is None:
            return None
        self._current = outer
        # Forward: walk the tail from the midpoint; backward: find the
        # sources one head-hop before the midpoint.
        self._inner = self._make_inner(outer[1] if self.forward else outer[0])
        return None

    def _save(self, enc) -> dict:
        state = {"outer": self._outer.save(enc)}
        if self._current is not None:
            state["current"] = [enc(self._current[0]), enc(self._current[1])]
            state["inner"] = self._inner.save(enc)
        return state

    def _load(self, state: dict, dec) -> None:
        self._outer.load(state["outer"], dec)
        current = state.get("current")
        self._current = None
        self._inner = None
        if current is not None:
            self._current = (dec(current[0]), dec(current[1]))
            self._inner = self._make_inner(
                self._current[1] if self.forward else self._current[0]
            )
            self._inner.load(state["inner"], dec)


class _AltIter(PairIterator):
    """``p1|p2|...``: the choices, one after another."""

    kind = "alt"
    distinct = False

    def __init__(self, graph: Graph, codes, subject, object):
        super().__init__()
        self.graph = graph
        self.codes = tuple(codes)
        self.subject = subject
        self.object = object
        self._index = 0
        self._current: Optional[PairIterator] = self._build(0)

    def _build(self, index: int) -> Optional[PairIterator]:
        if index >= len(self.codes):
            return None
        return _build_raw(self.graph, self.codes[index], self.subject, self.object)

    def next_pair(self) -> Optional[IdPair]:
        if self._current is None:
            self.done = True
            return None
        pair = self._current.next_pair()
        if pair is not None:
            return pair
        if self._current.done:
            self._retire(self._current)
            self._index += 1
            self._current = self._build(self._index)
            if self._current is None:
                self.done = True
        return None

    def _save(self, enc) -> dict:
        state = {"index": self._index}
        if self._current is not None:
            state["current"] = self._current.save(enc)
        return state

    def _load(self, state: dict, dec) -> None:
        self._index = int(state.get("index", 0))
        self._current = self._build(self._index)
        if self._current is not None and "current" in state:
            self._current.load(state["current"], dec)


class _ClosureIter(PairIterator):
    """BFS reachability from one bound endpoint (``*``/``+``/``?``).

    The traversal state is fully explicit — a frontier deque, a visited
    set, and a discovered-but-unemitted buffer (the emit cursor) — so a
    token can carry a half-explored closure across processes.  Each
    ``next_pair()`` call expands at most one frontier node (one hop
    application, the bounded unit) or emits one buffered target.

    ``forward=False`` walks the path backwards (the object-bound
    shape); ``target`` filters and early-exits the both-endpoints-bound
    shape.  Zero-length paths relate a term to itself even when it
    occurs in no triple, per spec.
    """

    kind = "closure"
    distinct = True

    def __init__(
        self,
        graph: Graph,
        inner,
        start: int,
        include_zero: bool,
        max_one: bool,
        forward: bool = True,
        target: Optional[int] = None,
    ):
        super().__init__()
        self.graph = graph
        self.inner = inner
        self.start = start
        self.include_zero = include_zero
        self.max_one = max_one
        self.forward = forward
        self.target = target
        self._pending_zero = include_zero
        self._visited = {start} if include_zero else set()
        self._frontier = deque([start])
        self._buffer = deque()
        self.hops = 0
        self.peak_frontier = 1

    # -- emission -------------------------------------------------------

    def _emit(self, node: int) -> Optional[IdPair]:
        """The pair for a reached node, or ``None`` if filtered out."""
        if self.target is not None:
            if node != self.target:
                return None
            # Both endpoints bound: one pair can ever match; stop the
            # exploration as soon as reachability is established.
            self.done = True
            return (self.start, self.target)
        if self.forward:
            return (self.start, node)
        return (node, self.start)

    def _exhausted(self) -> None:
        self.done = True
        _PATH_VISITED.observe(len(self._visited))

    def next_pair(self) -> Optional[IdPair]:
        if self.done:
            return None
        if self._pending_zero:
            self._pending_zero = False
            return self._emit(self.start)
        if self._buffer:
            return self._emit(self._buffer.popleft())
        if not self._frontier:
            self._exhausted()
            return None
        node = self._frontier.popleft()
        self.hops += 1
        _PATH_HOPS.inc()
        for reached in hop_ids(self.graph, self.inner, node, self.forward):
            if reached in self._visited:
                continue
            self._visited.add(reached)
            self._buffer.append(reached)
            if not self.max_one:
                self._frontier.append(reached)
        if self.max_one:
            # ``p?`` applies the path once: nothing past the first hop.
            self._frontier.clear()
        peak = len(self._frontier)
        if peak > self.peak_frontier:
            self.peak_frontier = peak
        _PATH_FRONTIER.observe(peak)
        if self._buffer:
            return self._emit(self._buffer.popleft())
        if not self._frontier:
            self._exhausted()
        return None

    # -- suspension -----------------------------------------------------

    def _save(self, enc) -> dict:
        return {
            "start": enc(self.start),
            "zero": self._pending_zero,
            # Sorted for byte-stable tokens: the set's hash order is
            # process-local, its contents are not.
            "visited": [enc(id) for id in sorted(self._visited)],
            "frontier": [enc(id) for id in self._frontier],
            "buffer": [enc(id) for id in self._buffer],
            "hops": self.hops,
            "peak": self.peak_frontier,
        }

    def _load(self, state: dict, dec) -> None:
        self.start = dec(state["start"])
        self._pending_zero = bool(state.get("zero"))
        self._visited = {dec(id) for id in state.get("visited", [])}
        self._frontier = deque(dec(id) for id in state.get("frontier", []))
        self._buffer = deque(dec(id) for id in state.get("buffer", []))
        self.hops = int(state.get("hops", 0))
        self.peak_frontier = int(state.get("peak", 1))


class _FullClosureIter(PairIterator):
    """``?s p* ?o`` with both endpoints free: closure from every node.

    Ascends the dictionary ID range (:func:`iter_node_ids` shape, but
    with an explicit resumable cursor) and runs one bounded-step
    closure per graph node.  Emission is globally distinct because the
    per-node closures are distinct and each contributes a different
    subject.
    """

    kind = "all_nodes"
    distinct = True

    def __init__(self, graph: Graph, inner, include_zero: bool, max_one: bool):
        super().__init__()
        self.graph = graph
        self.inner = inner
        self.include_zero = include_zero
        self.max_one = max_one
        self._counts = _kind_counts(graph)
        self._kind = 0
        self._offset = 0
        self._closure: Optional[_ClosureIter] = None

    def _make_closure(self, node: int) -> _ClosureIter:
        return _ClosureIter(
            self.graph, self.inner, node, self.include_zero, self.max_one
        )

    def next_pair(self) -> Optional[IdPair]:
        if self._closure is not None:
            pair = self._closure.next_pair()
            if pair is not None:
                return pair
            if self._closure.done:
                self._retire(self._closure)
                self._closure = None
            return None
        for _ in range(NODE_PROBE_BATCH):
            while self._kind < 3 and self._offset >= self._counts[self._kind]:
                self._kind += 1
                self._offset = 0
            if self._kind >= 3:
                self.done = True
                return None
            id = self._kind * KIND_STRIDE + self._offset
            self._offset += 1
            if _is_graph_node(self.graph, id):
                self._closure = self._make_closure(id)
                return None
        return None

    def _save(self, enc) -> dict:
        state = {"cursor_kind": self._kind, "cursor_offset": self._offset}
        if self._closure is not None:
            state["closure"] = self._closure.save(enc)
        return state

    def _load(self, state: dict, dec) -> None:
        self._kind = int(state.get("cursor_kind", 0))
        self._offset = int(state.get("cursor_offset", 0))
        closure = state.get("closure")
        self._closure = None
        if closure is not None:
            # The start node is carried in the closure state itself.
            self._closure = self._make_closure(dec(closure["start"]))
            self._closure.load(closure, dec)


class _DistinctPairs(PairIterator):
    """Top-level pair dedup for compositions that can repeat a pair."""

    kind = "distinct"
    distinct = True

    def __init__(self, inner: PairIterator):
        super().__init__()
        self.inner = inner
        self._seen: set = set()

    def next_pair(self) -> Optional[IdPair]:
        pair = self.inner.next_pair()
        if pair is None:
            self.done = self.inner.done
            return None
        if pair in self._seen:
            return None
        self._seen.add(pair)
        return pair

    def _save(self, enc) -> dict:
        return {
            "inner": self.inner.save(enc),
            "seen": [[enc(s), enc(o)] for (s, o) in sorted(self._seen)],
        }

    def _load(self, state: dict, dec) -> None:
        self.inner.load(state["inner"], dec)
        self._seen = {(dec(s), dec(o)) for s, o in state.get("seen", [])}


def _build_seq_rest(graph: Graph, codes, subject, object) -> PairIterator:
    if len(codes) == 1:
        return _build_raw(graph, codes[0], subject, object)
    return _SeqIter(graph, codes, subject, object)


def _build_raw(graph: Graph, code, subject, object) -> PairIterator:
    """The iterator for one lowered path node (no dedup wrapper)."""
    op = code[0]
    if op == "edge":
        return _EdgeIter(graph, code[1], subject, object)
    if op == "inv":
        return _InvIter(_build_raw(graph, code[1], object, subject))
    if op == "seq":
        return _SeqIter(graph, code[1], subject, object)
    if op == "alt":
        return _AltIter(graph, code[1], subject, object)
    if op == "closure":
        _, inner, include_zero, max_one = code
        if subject is not None:
            return _ClosureIter(
                graph, inner, subject, include_zero, max_one,
                forward=True, target=object,
            )
        if object is not None:
            return _ClosureIter(
                graph, inner, object, include_zero, max_one, forward=False
            )
        return _FullClosureIter(graph, inner, include_zero, max_one)
    raise SparqlEvalError(f"unknown lowered path op: {op!r}")


def closure_stats(iterator: Optional[PairIterator]) -> Tuple[int, int, int]:
    """``(hops, peak_frontier, visited)`` summed over nested closures.

    Walks a pair-iterator tree and aggregates its live BFS counters;
    feeds the frontier detail line of ``EXPLAIN ANALYZE``.
    """
    if iterator is None:
        return (0, 0, 0)
    if isinstance(iterator, _ClosureIter):
        return (iterator.hops, iterator.peak_frontier, len(iterator._visited))
    parts = []
    if isinstance(iterator, (_InvIter, _DistinctPairs)):
        parts = [iterator.inner]
    elif isinstance(iterator, _SeqIter):
        parts = [iterator._outer, iterator._inner]
    elif isinstance(iterator, _AltIter):
        parts = [iterator._current]
    elif isinstance(iterator, _FullClosureIter):
        parts = [iterator._closure]
    hops, peak, visited = iterator.spent_stats
    for part in parts:
        h, p, v = closure_stats(part)
        hops += h
        peak = max(peak, p)
        visited += v
    return (hops, peak, visited)


def _shape(subject, object) -> str:
    if subject is not None and object is not None:
        return "both_bound"
    if subject is not None:
        return "forward"
    if object is not None:
        return "backward"
    return "unbound"


def build_pair_iterator(graph: Graph, code, subject, object) -> PairIterator:
    """The preemptable, distinct pair source for a lowered path.

    ``subject``/``object`` are term IDs or ``None`` for unconstrained;
    the returned iterator emits each matching ``(s_id, o_id)`` pair
    exactly once, in a deterministic order shared by every store
    holding the same triples.
    """
    _PATH_SCANS.labels(shape=_shape(subject, object)).inc()
    iterator = _build_raw(graph, code, subject, object)
    if not iterator.distinct:
        iterator = _DistinctPairs(iterator)
    return iterator


# ----------------------------------------------------------------------
# Term-space wrappers (the recursive evaluator's view)
# ----------------------------------------------------------------------


def eval_path(
    graph: Graph,
    subject: Optional[Term],
    path: Path,
    object: Optional[Term],
) -> Iterator[Pair]:
    """Yield distinct (s, o) term pairs connected by ``path``.

    ``subject`` / ``object`` of None mean unconstrained; bound endpoints
    restrict (and direct) the search.  A thin decode loop over the
    ID-space pair iterators, so the recursive evaluator and the
    physical :class:`~repro.sparql.physical.ppath.PathScanOp` walk
    paths identically (rows *and* order).
    """
    dictionary = graph.dictionary
    code = lower_path(path, dictionary.lookup)
    s = None if subject is None else dictionary.encode(subject)
    o = None if object is None else dictionary.encode(object)
    iterator = build_pair_iterator(graph, code, s, o)
    decode = dictionary.decode
    while not iterator.done:
        pair = iterator.next_pair()
        if pair is not None:
            yield (decode(pair[0]), decode(pair[1]))


def path_hop(
    graph: Graph, node: Term, path: Path, forward: bool = True
) -> List[Term]:
    """One application of ``path`` from ``node``, in canonical ID order.

    Returns an ordered list (pre-PR 8 this was an unordered set, which
    made resumed traversals irreproducible across processes).
    """
    dictionary = graph.dictionary
    code = lower_path(path, dictionary.lookup)
    decode = dictionary.decode
    return [
        decode(id)
        for id in hop_ids(graph, code, dictionary.encode(node), forward)
    ]
