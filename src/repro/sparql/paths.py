"""Property-path evaluation (SPARQL 1.1 subset).

Supported operators: IRI steps, inverse ``^p``, sequence ``p1/p2``,
alternative ``p1|p2``, and the closures ``p*``, ``p+``, ``p?``.
Closure evaluation is a breadth-first reachability search, directed by
whichever endpoint of the pattern is bound.

The entry point :func:`eval_path` yields distinct ``(subject, object)``
pairs connected by the path, honouring optional endpoint constraints.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional, Set, Tuple, Union

from ..rdf.graph import Graph
from ..rdf.terms import Term, URI
from .ast import (
    AlternativePath,
    InversePath,
    PathExpr,
    RepeatPath,
    SequencePath,
)
from .errors import SparqlEvalError

__all__ = ["eval_path", "path_hop"]

Path = Union[URI, PathExpr]
Pair = Tuple[Term, Term]


def eval_path(
    graph: Graph,
    subject: Optional[Term],
    path: Path,
    object: Optional[Term],
) -> Iterator[Pair]:
    """Yield distinct (s, o) pairs connected by ``path``.

    ``subject`` / ``object`` of None mean unconstrained; bound endpoints
    restrict (and direct) the search.
    """
    seen: Set[Pair] = set()
    for pair in _eval(graph, subject, path, object):
        if pair not in seen:
            seen.add(pair)
            yield pair


def _eval(
    graph: Graph, subject: Optional[Term], path: Path, object: Optional[Term]
) -> Iterator[Pair]:
    if isinstance(path, URI):
        source = subject if _is_node(subject) else None
        target = object
        for triple in graph.triples(source, path, target):
            yield (triple.subject, triple.object)
        return
    if isinstance(path, InversePath):
        for (a, b) in _eval(graph, object, path.inner, subject):
            yield (b, a)
        return
    if isinstance(path, SequencePath):
        yield from _eval_sequence(graph, subject, path.steps, object)
        return
    if isinstance(path, AlternativePath):
        for choice in path.choices:
            yield from _eval(graph, subject, choice, object)
        return
    if isinstance(path, RepeatPath):
        yield from _eval_repeat(graph, subject, path, object)
        return
    raise SparqlEvalError(f"unsupported path expression: {path!r}")


def _is_node(term: Optional[Term]) -> bool:
    return term is not None


def _eval_sequence(
    graph: Graph,
    subject: Optional[Term],
    steps: Tuple[Path, ...],
    object: Optional[Term],
) -> Iterator[Pair]:
    if len(steps) == 1:
        yield from _eval(graph, subject, steps[0], object)
        return
    head, tail = steps[0], steps[1:]
    # Evaluate from the bound side when possible to stay directed.
    if subject is None and object is not None:
        for (mid, end) in _eval_sequence(graph, None, tail, object):
            for (start, mid2) in _eval(graph, None, head, mid):
                del mid2
                yield (start, end)
        return
    for (start, mid) in _eval(graph, subject, head, None):
        for (_mid, end) in _eval_sequence(graph, mid, tail, object):
            yield (start, end)


def path_hop(graph: Graph, node: Term, path: Path, forward: bool = True) -> Set[Term]:
    """One application of ``path`` from ``node`` (used by closures)."""
    if forward:
        return {target for (_s, target) in eval_path(graph, node, path, None)}
    return {source for (source, _o) in eval_path(graph, None, path, node)}


def _all_graph_nodes(graph: Graph) -> Set[Term]:
    nodes: Set[Term] = set()
    for triple in graph.triples():
        nodes.add(triple.subject)
        nodes.add(triple.object)
    return nodes


def _closure_from(
    graph: Graph, start: Term, path: Path, include_zero: bool, max_one: bool
) -> Iterator[Term]:
    """Nodes reachable from ``start`` via ``path`` repetitions."""
    if include_zero:
        yield start
    if max_one:
        for target in path_hop(graph, start, path):
            if target != start or not include_zero:
                yield target
        return
    visited: Set[Term] = {start} if include_zero else set()
    frontier = deque([start])
    while frontier:
        current = frontier.popleft()
        for target in path_hop(graph, current, path):
            if target in visited:
                continue
            visited.add(target)
            frontier.append(target)
            yield target


def _eval_repeat(
    graph: Graph,
    subject: Optional[Term],
    path: RepeatPath,
    object: Optional[Term],
) -> Iterator[Pair]:
    include_zero = path.min_hops == 0
    if subject is not None:
        emitted_self = False
        for target in _closure_from(
            graph, subject, path.inner, include_zero, path.max_one
        ):
            if target == subject:
                if emitted_self:
                    continue
                emitted_self = True
            if object is None or object == target:
                yield (subject, target)
        return
    if object is not None:
        # Walk backwards from the object.
        inverse = InversePath(path.inner)
        emitted_self = False
        for source in _closure_from(
            graph, object, inverse, include_zero, path.max_one
        ):
            if source == object:
                if emitted_self:
                    continue
                emitted_self = True
            yield (source, object)
        return
    # Both endpoints unbound: per spec the zero-length path relates every
    # graph node to itself; then closure from each node.
    for node in sorted(_all_graph_nodes(graph), key=lambda term: term.sort_key()):
        for target in _closure_from(
            graph, node, path.inner, include_zero, path.max_one
        ):
            yield (node, target)
