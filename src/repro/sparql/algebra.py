"""Lowering of parsed queries to an algebra tree.

The operators follow the SPARQL 1.1 algebra: BGP, Join, LeftJoin, Filter,
Union, Minus, Extend, Values, Group/Aggregation (fused with projection for
simplicity), Project, Distinct/Reduced, OrderBy, and Slice.  The evaluator
(:mod:`repro.sparql.evaluator`) walks this tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..rdf.terms import Literal, URI
from .ast import (
    AggregateExpr,
    AskQuery,
    BindPattern,
    BinaryExpr,
    Expression,
    FilterPattern,
    FunctionCall,
    GroupGraphPattern,
    InExpr,
    MinusPattern,
    OptionalPattern,
    OrderCondition,
    Projection,
    Query,
    SelectQuery,
    SubSelectPattern,
    TermExpr,
    TriplePatternNode,
    UnaryExpr,
    UnionPattern,
    ValuesPattern,
    Var,
    VarExpr,
)
from .errors import SparqlEvalError

__all__ = [
    "AlgebraNode",
    "Unit",
    "BGP",
    "Join",
    "LeftJoin",
    "Filter",
    "Union",
    "Minus",
    "Extend",
    "ValuesTable",
    "Aggregation",
    "Project",
    "Distinct",
    "Reduced",
    "OrderBy",
    "Slice",
    "TopK",
    "Ask",
    "translate_query",
    "translate_pattern",
    "contains_aggregate",
    "expression_variables",
    "certain_variables",
    "possible_variables",
]


class AlgebraNode:
    """Base class for algebra operators."""

    __slots__ = ()


@dataclass
class Unit(AlgebraNode):
    """The unit table: one empty solution."""


@dataclass
class BGP(AlgebraNode):
    """A basic graph pattern.

    ``filters`` are conditions the optimizer pushed *into* the pattern:
    the evaluator applies each one as soon as all of its variables are
    bound during the index-nested-loop join, so failing candidates are
    discarded before the remaining patterns are expanded.  Every filter's
    variables must be a subset of the BGP's own variables — the
    pushdown pass guarantees this.  ``preordered`` marks pattern orders
    chosen by the statistics-driven reorder pass; the evaluator then
    skips its own greedy ordering.
    """

    patterns: Tuple[TriplePatternNode, ...]
    filters: Tuple[Expression, ...] = ()
    preordered: bool = False

    def variables(self) -> set:
        names: set = set()
        for pattern in self.patterns:
            names |= pattern.variables()
        return names


@dataclass
class Join(AlgebraNode):
    left: AlgebraNode
    right: AlgebraNode


@dataclass
class LeftJoin(AlgebraNode):
    left: AlgebraNode
    right: AlgebraNode
    condition: Optional[Expression] = None


@dataclass
class Filter(AlgebraNode):
    condition: Expression
    input: AlgebraNode


@dataclass
class Union(AlgebraNode):
    branches: List[AlgebraNode]


@dataclass
class Minus(AlgebraNode):
    left: AlgebraNode
    right: AlgebraNode


@dataclass
class Extend(AlgebraNode):
    input: AlgebraNode
    var: Var
    expression: Expression


@dataclass
class ValuesTable(AlgebraNode):
    variables: List[Var]
    rows: List[Tuple[Optional[Union[URI, Literal]], ...]]


@dataclass
class Aggregation(AlgebraNode):
    """Grouping plus per-group evaluation of the SELECT expressions.

    ``keys`` are the GROUP BY expressions (a :class:`Projection` key also
    binds its ``AS`` variable).  ``projections`` are the final SELECT
    items, evaluated once per group with aggregate nodes computed over the
    group members.  ``having`` filters groups.
    """

    input: AlgebraNode
    keys: List[Union[Expression, Projection]]
    projections: List[Projection]
    having: List[Expression] = field(default_factory=list)


@dataclass
class Project(AlgebraNode):
    input: AlgebraNode
    variables: Optional[List[Var]]  # None = keep all (SELECT *)
    extensions: List[Projection] = field(default_factory=list)


@dataclass
class Distinct(AlgebraNode):
    input: AlgebraNode


@dataclass
class Reduced(AlgebraNode):
    input: AlgebraNode


@dataclass
class OrderBy(AlgebraNode):
    input: AlgebraNode
    conditions: List[OrderCondition]


@dataclass
class Slice(AlgebraNode):
    input: AlgebraNode
    offset: int = 0
    limit: Optional[int] = None


@dataclass
class TopK(AlgebraNode):
    """Fused ``ORDER BY ... LIMIT k [OFFSET n]``.

    Produced by the optimizer's top-k fusion pass; the evaluator keeps a
    bounded heap of ``limit + offset`` rows instead of materialising and
    fully sorting the input.  Ties are broken by input arrival order, so
    the output is bit-identical to a stable full sort followed by a
    slice.
    """

    input: AlgebraNode
    conditions: List[OrderCondition]
    limit: int
    offset: int = 0


@dataclass
class Ask(AlgebraNode):
    input: AlgebraNode


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def contains_aggregate(expression: Expression) -> bool:
    """Whether an expression tree contains an aggregate node."""
    if isinstance(expression, AggregateExpr):
        return True
    if isinstance(expression, BinaryExpr):
        return contains_aggregate(expression.left) or contains_aggregate(
            expression.right
        )
    if isinstance(expression, UnaryExpr):
        return contains_aggregate(expression.operand)
    if isinstance(expression, FunctionCall):
        return any(contains_aggregate(arg) for arg in expression.args)
    if isinstance(expression, InExpr):
        return contains_aggregate(expression.operand) or any(
            contains_aggregate(choice) for choice in expression.choices
        )
    return False


def expression_variables(expression: Expression) -> set:
    """The set of variable names mentioned by an expression."""
    if isinstance(expression, VarExpr):
        return {expression.var.name}
    if isinstance(expression, TermExpr):
        return set()
    if isinstance(expression, BinaryExpr):
        return expression_variables(expression.left) | expression_variables(
            expression.right
        )
    if isinstance(expression, UnaryExpr):
        return expression_variables(expression.operand)
    if isinstance(expression, (FunctionCall,)):
        names: set = set()
        for arg in expression.args:
            names |= expression_variables(arg)
        return names
    if isinstance(expression, InExpr):
        names = expression_variables(expression.operand)
        for choice in expression.choices:
            names |= expression_variables(choice)
        return names
    if isinstance(expression, AggregateExpr):
        if expression.argument is None:
            return set()
        return expression_variables(expression.argument)
    return set()


# ----------------------------------------------------------------------
# Static variable analysis
# ----------------------------------------------------------------------


def certain_variables(node: AlgebraNode) -> set:
    """Variables bound in *every* solution the operator can produce.

    This is the static produced-variable analysis join planning relies
    on: hash-join keys are drawn from ``certain(left) & certain(right)``
    so a key variable can never be unbound on either side.  Variables
    that are only *possibly* bound (OPTIONAL right sides, BIND whose
    expression may error, UNION branches that disagree) are excluded —
    they are handled by the post-match compatibility check instead.
    """
    if isinstance(node, BGP):
        return node.variables()
    if isinstance(node, Join):
        return certain_variables(node.left) | certain_variables(node.right)
    if isinstance(node, (LeftJoin, Minus)):
        return certain_variables(node.left)
    if isinstance(node, Union):
        if not node.branches:
            return set()
        certain = certain_variables(node.branches[0])
        for branch in node.branches[1:]:
            certain &= certain_variables(branch)
        return certain
    if isinstance(node, (Filter, Distinct, Reduced, OrderBy, TopK, Slice)):
        return certain_variables(node.input)
    if isinstance(node, Extend):
        # BIND errors leave the variable unbound, so it is possible only.
        return certain_variables(node.input)
    if isinstance(node, ValuesTable):
        return {
            var.name
            for index, var in enumerate(node.variables)
            if all(row[index] is not None for row in node.rows)
        }
    if isinstance(node, Project):
        inner = certain_variables(node.input)
        if node.variables is None:
            return inner
        extended = {projection.var.name for projection in node.extensions}
        return {
            var.name
            for var in node.variables
            if var.name in inner and var.name not in extended
        }
    # Aggregation outputs may drop variables on expression errors or
    # None group keys; Unit/Ask produce no variables.
    return set()


def possible_variables(node: AlgebraNode) -> set:
    """Variables that *may* appear bound in a solution of the operator."""
    if isinstance(node, BGP):
        return node.variables()
    if isinstance(node, (Join, LeftJoin)):
        return possible_variables(node.left) | possible_variables(node.right)
    if isinstance(node, Minus):
        return possible_variables(node.left)
    if isinstance(node, Union):
        names: set = set()
        for branch in node.branches:
            names |= possible_variables(branch)
        return names
    if isinstance(node, (Filter, Distinct, Reduced, OrderBy, TopK, Slice)):
        return possible_variables(node.input)
    if isinstance(node, Extend):
        return possible_variables(node.input) | {node.var.name}
    if isinstance(node, ValuesTable):
        return {var.name for var in node.variables}
    if isinstance(node, Project):
        if node.variables is None:
            return possible_variables(node.input)
        return {var.name for var in node.variables}
    if isinstance(node, Aggregation):
        return {projection.var.name for projection in node.projections}
    return set()


# ----------------------------------------------------------------------
# Translation
# ----------------------------------------------------------------------


def translate_pattern(group: GroupGraphPattern) -> AlgebraNode:
    """Translate a group graph pattern to algebra (filters applied last)."""
    current: AlgebraNode = Unit()
    pending_triples: List[TriplePatternNode] = []
    filters: List[Expression] = []

    def flush() -> None:
        nonlocal current
        if pending_triples:
            bgp = BGP(tuple(pending_triples))
            pending_triples.clear()
            current = bgp if isinstance(current, Unit) else Join(current, bgp)

    def join_with(node: AlgebraNode) -> None:
        nonlocal current
        flush()
        current = node if isinstance(current, Unit) else Join(current, node)

    for child in group.children:
        if isinstance(child, TriplePatternNode):
            pending_triples.append(child)
        elif isinstance(child, FilterPattern):
            filters.append(child.expression)
        elif isinstance(child, OptionalPattern):
            flush()
            inner = translate_pattern(child.pattern)
            condition = None
            # A top-level FILTER inside OPTIONAL becomes the LeftJoin
            # condition per the SPARQL algebra.
            if isinstance(inner, Filter):
                condition = inner.condition
                inner = inner.input
            current = LeftJoin(current, inner, condition)
        elif isinstance(child, UnionPattern):
            join_with(Union([translate_pattern(alt) for alt in child.alternatives]))
        elif isinstance(child, MinusPattern):
            flush()
            current = Minus(current, translate_pattern(child.pattern))
        elif isinstance(child, BindPattern):
            flush()
            current = Extend(current, child.var, child.expression)
        elif isinstance(child, ValuesPattern):
            join_with(ValuesTable(child.variables, child.rows))
        elif isinstance(child, SubSelectPattern):
            join_with(translate_select(child.query))
        elif isinstance(child, GroupGraphPattern):
            join_with(translate_pattern(child))
        else:
            raise SparqlEvalError(f"unsupported pattern node: {child!r}")
    flush()
    for condition in filters:
        current = Filter(condition, current)
    return current


def _is_aggregate_query(query: SelectQuery) -> bool:
    if query.group_by or query.having:
        return True
    if query.projections:
        return any(
            projection.expression is not None
            and contains_aggregate(projection.expression)
            for projection in query.projections
        )
    return False


def translate_select(query: SelectQuery) -> AlgebraNode:
    """Translate a SELECT query (also used for sub-selects)."""
    node = translate_pattern(query.where)
    if _is_aggregate_query(query):
        if query.projections is None:
            raise SparqlEvalError("SELECT * cannot be used with GROUP BY")
        node = Aggregation(
            input=node,
            keys=list(query.group_by),
            projections=list(query.projections),
            having=list(query.having),
        )
    else:
        variables: Optional[List[Var]]
        extensions: List[Projection] = []
        if query.projections is None:
            variables = None
        else:
            variables = [projection.var for projection in query.projections]
            extensions = [
                projection
                for projection in query.projections
                if projection.expression is not None
            ]
        node = Project(node, variables, extensions)
    if query.order_by:
        node = OrderBy(node, list(query.order_by))
    if query.distinct:
        node = Distinct(node)
    elif query.reduced:
        node = Reduced(node)
    if query.limit is not None or query.offset:
        node = Slice(node, offset=query.offset, limit=query.limit)
    return node


def translate_query(query: Query) -> AlgebraNode:
    """Translate a parsed query to its algebra tree."""
    if isinstance(query, SelectQuery):
        return translate_select(query)
    if isinstance(query, AskQuery):
        return Ask(translate_pattern(query.where))
    raise SparqlEvalError(f"unsupported query form: {query!r}")
