"""A from-scratch SPARQL 1.1 SELECT/ASK engine over :mod:`repro.rdf`.

Pipeline: :func:`tokenize` -> :func:`parse_query` -> algebra translation
(:func:`translate_query`) -> iterator evaluation (:class:`Evaluator`).
The engine substitutes for the Virtuoso SPARQL endpoints the paper runs
against; it executes every query shape eLinda generates, including the
nested GROUP BY aggregate query of Section 4.
"""

from .ast import AskQuery, Query, SelectQuery, Var
from .errors import ExpressionError, SparqlError, SparqlEvalError, SparqlSyntaxError
from .evaluator import EvalStats, Evaluator, evaluate
from .lexer import Token, TokenType, tokenize
from .parser import parse_query
from .algebra import translate_query
from .results import AskResult, GraphResult, SelectResult, results_from_json, results_to_json
from .physical import PhysicalOperator, PlanStateError
from .planner import PhysicalPlan, PhysicalPlanFactory, build_physical_plan
from .executor import (
    ExpiredTokenError,
    MalformedTokenError,
    Page,
    RoundRobinScheduler,
    TokenVersionError,
    decode_continuation,
    encode_continuation,
    restore_plan,
    run_quantum,
    run_to_completion,
)

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "parse_query",
    "translate_query",
    "Query",
    "SelectQuery",
    "AskQuery",
    "Var",
    "Evaluator",
    "EvalStats",
    "evaluate",
    "SelectResult",
    "AskResult",
    "GraphResult",
    "results_to_json",
    "results_from_json",
    "SparqlError",
    "SparqlSyntaxError",
    "SparqlEvalError",
    "ExpressionError",
    "PhysicalOperator",
    "PlanStateError",
    "PhysicalPlan",
    "PhysicalPlanFactory",
    "build_physical_plan",
    "Page",
    "RoundRobinScheduler",
    "MalformedTokenError",
    "TokenVersionError",
    "ExpiredTokenError",
    "encode_continuation",
    "decode_continuation",
    "restore_plan",
    "run_quantum",
    "run_to_completion",
]
