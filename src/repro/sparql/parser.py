"""Recursive-descent parser for the supported SPARQL subset.

Covers SELECT / ASK with: prologue (PREFIX/BASE), DISTINCT/REDUCED,
projection expressions ``(expr AS ?v)``, basic graph patterns with
``;``/``,`` shorthand and ``a``, FILTER, OPTIONAL, UNION, MINUS, BIND,
VALUES, nested sub-SELECTs, GROUP BY, HAVING, ORDER BY, LIMIT, OFFSET,
and the SPARQL expression grammar with aggregates and the common
builtins.  This is a strict superset of the query shapes eLinda
generates (see :mod:`repro.core.queries`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..rdf.terms import (
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    BNode,
    Literal,
    URI,
)
from .ast import (
    AggregateExpr,
    AlternativePath,
    AskQuery,
    ConstructQuery,
    PathExpr,
    BindPattern,
    BinaryExpr,
    ExistsExpr,
    Expression,
    FilterPattern,
    FunctionCall,
    GroupGraphPattern,
    InExpr,
    InversePath,
    MinusPattern,
    OptionalPattern,
    OrderCondition,
    Projection,
    Query,
    RepeatPath,
    SelectQuery,
    SequencePath,
    SubSelectPattern,
    TermExpr,
    TermOrVar,
    TriplePatternNode,
    UnaryExpr,
    UnionPattern,
    ValuesPattern,
    Var,
    VarExpr,
)
from .errors import SparqlSyntaxError
from .lexer import Token, TokenType, tokenize

__all__ = ["parse_query", "Parser"]

_RDF_TYPE = URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")

_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT"})

_BUILTIN_ARITY = {
    "STR": (1, 1),
    "LANG": (1, 1),
    "LANGMATCHES": (2, 2),
    "DATATYPE": (1, 1),
    "BOUND": (1, 1),
    "IRI": (1, 1),
    "URI": (1, 1),
    "BNODE": (0, 1),
    "ABS": (1, 1),
    "CEIL": (1, 1),
    "FLOOR": (1, 1),
    "ROUND": (1, 1),
    "CONCAT": (0, 99),
    "SUBSTR": (2, 3),
    "STRLEN": (1, 1),
    "REPLACE": (3, 4),
    "UCASE": (1, 1),
    "LCASE": (1, 1),
    "CONTAINS": (2, 2),
    "STRSTARTS": (2, 2),
    "STRENDS": (2, 2),
    "STRBEFORE": (2, 2),
    "STRAFTER": (2, 2),
    "ENCODE_FOR_URI": (1, 1),
    "COALESCE": (1, 99),
    "IF": (3, 3),
    "SAMETERM": (2, 2),
    "ISIRI": (1, 1),
    "ISURI": (1, 1),
    "ISBLANK": (1, 1),
    "ISLITERAL": (1, 1),
    "ISNUMERIC": (1, 1),
    "REGEX": (2, 3),
}


class Parser:
    """A single-use parser over a token stream."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0
        self.prefixes: dict[str, str] = {}
        self.base = ""

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.type != TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> SparqlSyntaxError:
        token = token or self.peek()
        return SparqlSyntaxError(
            f"{message}, found {token.value!r}", token.line, token.column
        )

    def at_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return token.type == TokenType.KEYWORD and token.value in keywords

    def at_punct(self, *values: str) -> bool:
        token = self.peek()
        return token.type == TokenType.PUNCT and token.value in values

    def expect_keyword(self, keyword: str) -> Token:
        if not self.at_keyword(keyword):
            raise self.error(f"expected {keyword}")
        return self.next()

    def expect_punct(self, value: str) -> Token:
        if not self.at_punct(value):
            raise self.error(f"expected {value!r}")
        return self.next()

    def accept_keyword(self, *keywords: str) -> Optional[Token]:
        if self.at_keyword(*keywords):
            return self.next()
        return None

    def accept_punct(self, *values: str) -> Optional[Token]:
        if self.at_punct(*values):
            return self.next()
        return None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def parse(self) -> Query:
        self._parse_prologue()
        if self.at_keyword("SELECT"):
            query = self._parse_select()
        elif self.at_keyword("ASK"):
            query = self._parse_ask()
        elif self.at_keyword("CONSTRUCT"):
            query = self._parse_construct()
        else:
            raise self.error("expected SELECT, ASK, or CONSTRUCT")
        if self.peek().type != TokenType.EOF:
            raise self.error("trailing tokens after query")
        return query

    def _parse_prologue(self) -> None:
        while True:
            if self.accept_keyword("PREFIX"):
                token = self.next()
                if token.type != TokenType.PNAME or not token.value.endswith(":"):
                    # PNAME token carries 'prefix:' possibly with local part;
                    # a declaration must be bare 'prefix:'.
                    if token.type != TokenType.PNAME or ":" not in token.value:
                        raise self.error("expected prefix name", token)
                prefix = token.value.rstrip(":")
                if ":" in prefix:
                    raise self.error("malformed prefix declaration", token)
                iri_token = self.next()
                if iri_token.type != TokenType.IRI:
                    raise self.error("expected IRI in PREFIX", iri_token)
                self.prefixes[prefix] = iri_token.value
            elif self.accept_keyword("BASE"):
                iri_token = self.next()
                if iri_token.type != TokenType.IRI:
                    raise self.error("expected IRI in BASE", iri_token)
                self.base = iri_token.value
            else:
                return

    # ------------------------------------------------------------------
    # Query forms
    # ------------------------------------------------------------------

    def _parse_select(self) -> SelectQuery:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        reduced = bool(self.accept_keyword("REDUCED")) if not distinct else False
        projections = self._parse_projections()
        self._skip_dataset_clauses()
        self.accept_keyword("WHERE")
        where = self._parse_group_graph_pattern()
        query = SelectQuery(
            projections=projections,
            where=where,
            distinct=distinct,
            reduced=reduced,
        )
        self._parse_solution_modifiers(query)
        return query

    def _parse_ask(self) -> AskQuery:
        self.expect_keyword("ASK")
        self._skip_dataset_clauses()
        self.accept_keyword("WHERE")
        return AskQuery(where=self._parse_group_graph_pattern())

    def _parse_construct(self) -> ConstructQuery:
        self.expect_keyword("CONSTRUCT")
        template: List[TriplePatternNode] = []
        if self.at_punct("{"):
            # Explicit template.
            template_group = self._parse_template_group()
            template = template_group
            self._skip_dataset_clauses()
            self.accept_keyword("WHERE")
            where = self._parse_group_graph_pattern()
        else:
            # Short form: CONSTRUCT WHERE { triples } — the template is
            # the (triples-only) pattern itself.
            self._skip_dataset_clauses()
            self.expect_keyword("WHERE")
            where = self._parse_group_graph_pattern()
            for child in where.children:
                if not isinstance(child, TriplePatternNode):
                    raise self.error(
                        "CONSTRUCT WHERE short form allows triple "
                        "patterns only"
                    )
                template.append(child)
        query = ConstructQuery(template=template, where=where)
        # LIMIT / OFFSET in either order.
        for _ in range(2):
            if self.accept_keyword("LIMIT"):
                token = self.next()
                if token.type != TokenType.INTEGER:
                    raise self.error("expected integer after LIMIT", token)
                query.limit = int(token.value)
            elif self.accept_keyword("OFFSET"):
                token = self.next()
                if token.type != TokenType.INTEGER:
                    raise self.error("expected integer after OFFSET", token)
                query.offset = int(token.value)
        return query

    def _parse_template_group(self) -> List[TriplePatternNode]:
        """A ``{ triples }`` CONSTRUCT template (no filters/paths)."""
        self.expect_punct("{")
        group = GroupGraphPattern()
        while not self.at_punct("}"):
            if self.peek().type == TokenType.EOF:
                raise self.error("unterminated CONSTRUCT template")
            self._parse_triples_block(group)
            self.accept_punct(".")
        self.expect_punct("}")
        template: List[TriplePatternNode] = []
        for child in group.children:
            assert isinstance(child, TriplePatternNode)
            if isinstance(child.predicate, PathExpr):
                raise self.error(
                    "property paths are not allowed in CONSTRUCT templates"
                )
            template.append(child)
        return template

    def _skip_dataset_clauses(self) -> None:
        while self.accept_keyword("FROM"):
            self.accept_keyword("NAMED")
            token = self.next()
            if token.type != TokenType.IRI:
                raise self.error("expected IRI in FROM clause", token)

    def _parse_projections(self) -> Optional[List[Projection]]:
        if self.accept_punct("*"):
            return None
        projections: List[Projection] = []
        while True:
            token = self.peek()
            if token.type == TokenType.VAR:
                self.next()
                projections.append(Projection(Var(token.value)))
            elif self.at_punct("("):
                self.next()
                expr = self._parse_expression()
                # Virtuoso-style "COUNT(?p) AS ?c" without outer parens is
                # handled below; here the standard "(expr AS ?v)".
                self.expect_keyword("AS")
                var_token = self.next()
                if var_token.type != TokenType.VAR:
                    raise self.error("expected variable after AS", var_token)
                self.expect_punct(")")
                projections.append(Projection(Var(var_token.value), expr))
            elif token.type == TokenType.KEYWORD and (
                token.value in _AGGREGATES or token.value in _BUILTIN_ARITY
            ):
                # Virtuoso extension used in the paper's Section 4 query:
                #   SELECT ?p COUNT(?p) AS ?count SUM(?sp) AS ?sp
                expr = self._parse_primary()
                self.expect_keyword("AS")
                var_token = self.next()
                if var_token.type != TokenType.VAR:
                    raise self.error("expected variable after AS", var_token)
                projections.append(Projection(Var(var_token.value), expr))
            else:
                break
        if not projections:
            raise self.error("expected projection list or *")
        return projections

    def _parse_solution_modifiers(self, query: SelectQuery) -> None:
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            while True:
                token = self.peek()
                if token.type == TokenType.VAR:
                    self.next()
                    query.group_by.append(VarExpr(Var(token.value)))
                elif self.at_punct("("):
                    self.next()
                    expr = self._parse_expression()
                    if self.accept_keyword("AS"):
                        var_token = self.next()
                        if var_token.type != TokenType.VAR:
                            raise self.error("expected variable", var_token)
                        self.expect_punct(")")
                        query.group_by.append(
                            Projection(Var(var_token.value), expr)
                        )
                    else:
                        self.expect_punct(")")
                        query.group_by.append(expr)
                else:
                    break
            if not query.group_by:
                raise self.error("empty GROUP BY")
        if self.accept_keyword("HAVING"):
            while self.at_punct("("):
                self.next()
                query.having.append(self._parse_expression())
                self.expect_punct(")")
            if not query.having:
                raise self.error("empty HAVING")
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                if self.accept_keyword("ASC"):
                    self.expect_punct("(")
                    expr = self._parse_expression()
                    self.expect_punct(")")
                    query.order_by.append(OrderCondition(expr, descending=False))
                elif self.accept_keyword("DESC"):
                    self.expect_punct("(")
                    expr = self._parse_expression()
                    self.expect_punct(")")
                    query.order_by.append(OrderCondition(expr, descending=True))
                elif self.peek().type == TokenType.VAR:
                    token = self.next()
                    query.order_by.append(
                        OrderCondition(VarExpr(Var(token.value)))
                    )
                elif self.at_punct("("):
                    self.next()
                    expr = self._parse_expression()
                    self.expect_punct(")")
                    query.order_by.append(OrderCondition(expr))
                else:
                    break
            if not query.order_by:
                raise self.error("empty ORDER BY")
        # LIMIT and OFFSET may appear in either order.
        for _ in range(2):
            if self.accept_keyword("LIMIT"):
                token = self.next()
                if token.type != TokenType.INTEGER:
                    raise self.error("expected integer after LIMIT", token)
                query.limit = int(token.value)
            elif self.accept_keyword("OFFSET"):
                token = self.next()
                if token.type != TokenType.INTEGER:
                    raise self.error("expected integer after OFFSET", token)
                query.offset = int(token.value)

    # ------------------------------------------------------------------
    # Graph patterns
    # ------------------------------------------------------------------

    def _parse_group_graph_pattern(self) -> GroupGraphPattern:
        self.expect_punct("{")
        group = GroupGraphPattern()
        while not self.at_punct("}"):
            token = self.peek()
            if token.type == TokenType.EOF:
                raise self.error("unterminated group graph pattern")
            if self.at_punct("{"):
                # Either a sub-select or a nested group (possibly UNION).
                if self._lookahead_is_subselect():
                    group.children.append(self._parse_subselect())
                else:
                    child = self._parse_group_or_union()
                    group.children.append(child)
            elif self.at_keyword("OPTIONAL"):
                self.next()
                group.children.append(
                    OptionalPattern(self._parse_group_graph_pattern())
                )
            elif self.at_keyword("MINUS"):
                self.next()
                group.children.append(
                    MinusPattern(self._parse_group_graph_pattern())
                )
            elif self.at_keyword("FILTER"):
                self.next()
                group.children.append(FilterPattern(self._parse_constraint()))
            elif self.at_keyword("BIND"):
                self.next()
                self.expect_punct("(")
                expr = self._parse_expression()
                self.expect_keyword("AS")
                var_token = self.next()
                if var_token.type != TokenType.VAR:
                    raise self.error("expected variable in BIND", var_token)
                self.expect_punct(")")
                group.children.append(BindPattern(expr, Var(var_token.value)))
            elif self.at_keyword("VALUES"):
                group.children.append(self._parse_values())
            elif self.at_keyword("GRAPH", "SERVICE"):
                raise self.error("GRAPH/SERVICE patterns are not supported")
            else:
                self._parse_triples_block(group)
            self.accept_punct(".")
        self.expect_punct("}")
        return group

    def _lookahead_is_subselect(self) -> bool:
        return (
            self.peek().type == TokenType.PUNCT
            and self.peek().value == "{"
            and self.peek(1).type == TokenType.KEYWORD
            and self.peek(1).value == "SELECT"
        )

    def _parse_subselect(self) -> SubSelectPattern:
        self.expect_punct("{")
        inner = self._parse_select()
        self.expect_punct("}")
        return SubSelectPattern(inner)

    def _parse_group_or_union(self) -> Union[GroupGraphPattern, UnionPattern]:
        first = self._parse_group_graph_pattern()
        if not self.at_keyword("UNION"):
            return first
        alternatives = [first]
        while self.accept_keyword("UNION"):
            if self._lookahead_is_subselect():
                raise self.error("sub-select inside UNION is not supported")
            alternatives.append(self._parse_group_graph_pattern())
        return UnionPattern(alternatives)

    def _parse_values(self) -> ValuesPattern:
        self.expect_keyword("VALUES")
        variables: List[Var] = []
        single_var = False
        if self.peek().type == TokenType.VAR:
            variables.append(Var(self.next().value))
            single_var = True
        else:
            self.expect_punct("(")
            while self.peek().type == TokenType.VAR:
                variables.append(Var(self.next().value))
            self.expect_punct(")")
        if not variables:
            raise self.error("VALUES requires at least one variable")
        self.expect_punct("{")
        rows: List[Tuple[Optional[Union[URI, Literal]], ...]] = []
        while not self.at_punct("}"):
            if single_var:
                rows.append((self._parse_values_term(),))
            else:
                self.expect_punct("(")
                row: List[Optional[Union[URI, Literal]]] = []
                while not self.at_punct(")"):
                    row.append(self._parse_values_term())
                self.expect_punct(")")
                if len(row) != len(variables):
                    raise self.error(
                        f"VALUES row has {len(row)} terms for "
                        f"{len(variables)} variables"
                    )
                rows.append(tuple(row))
        self.expect_punct("}")
        return ValuesPattern(variables, rows)

    def _parse_values_term(self) -> Optional[Union[URI, Literal]]:
        token = self.peek()
        if token.type == TokenType.KEYWORD and token.value == "UNDEF":
            self.next()
            return None
        term = self._parse_term(allow_var=False)
        if isinstance(term, BNode):
            raise self.error("blank nodes not allowed in VALUES")
        return term  # type: ignore[return-value]

    def _parse_constraint(self) -> Expression:
        if self.at_punct("("):
            self.next()
            expr = self._parse_expression()
            self.expect_punct(")")
            return expr
        # Bare builtin call: FILTER regex(...), FILTER bound(?x) ...
        return self._parse_primary()

    # ------------------------------------------------------------------
    # Triples
    # ------------------------------------------------------------------

    def _parse_triples_block(self, group: GroupGraphPattern) -> None:
        subject = self._parse_term(allow_var=True)
        while True:
            predicate = self._parse_verb()
            while True:
                object = self._parse_term(allow_var=True)
                group.children.append(
                    TriplePatternNode(subject, predicate, object)
                )
                if not self.accept_punct(","):
                    break
            if self.accept_punct(";"):
                if self.at_punct(".", "}", ";"):
                    # dangling ';'
                    while self.accept_punct(";"):
                        pass
                    return
                continue
            return

    def _parse_verb(self):
        token = self.peek()
        if token.type == TokenType.VAR:
            self.next()
            return Var(token.value)
        return self._parse_path_alternative()

    # ------------------------------------------------------------------
    # Property paths (SPARQL 1.1 subset: ^ / | * + ? and grouping)
    # ------------------------------------------------------------------

    def _parse_path_alternative(self):
        first = self._parse_path_sequence()
        if not self.at_punct("|"):
            return first
        choices = [first]
        while self.accept_punct("|"):
            choices.append(self._parse_path_sequence())
        return AlternativePath(tuple(choices))

    def _parse_path_sequence(self):
        first = self._parse_path_elt_or_inverse()
        if not self.at_punct("/"):
            return first
        steps = [first]
        while self.accept_punct("/"):
            steps.append(self._parse_path_elt_or_inverse())
        return SequencePath(tuple(steps))

    def _parse_path_elt_or_inverse(self):
        if self.accept_punct("^"):
            return InversePath(self._parse_path_elt())
        return self._parse_path_elt()

    def _parse_path_elt(self):
        primary = self._parse_path_primary()
        if self.accept_punct("*"):
            return RepeatPath(primary, min_hops=0)
        if self.accept_punct("+"):
            return RepeatPath(primary, min_hops=1)
        if self.accept_punct("?"):
            return RepeatPath(primary, min_hops=0, max_one=True)
        return primary

    def _parse_path_primary(self):
        token = self.peek()
        if token.type == TokenType.KEYWORD and token.value == "A":
            self.next()
            return _RDF_TYPE
        if self.at_punct("("):
            self.next()
            inner = self._parse_path_alternative()
            self.expect_punct(")")
            return inner
        if self.accept_punct("^"):
            return InversePath(self._parse_path_elt())
        term = self._parse_term(allow_var=False)
        if not isinstance(term, URI):
            raise self.error("predicate must be an IRI, variable, or path")
        return term

    def _parse_term(self, allow_var: bool) -> TermOrVar:
        token = self.peek()
        if token.type == TokenType.VAR:
            if not allow_var:
                raise self.error("variable not allowed here")
            self.next()
            return Var(token.value)
        if token.type == TokenType.IRI:
            self.next()
            value = token.value
            if self.base and not value.startswith(
                ("http://", "https://", "urn:", "file://", "mailto:")
            ):
                value = self.base + value
            return URI(value)
        if token.type == TokenType.PNAME:
            self.next()
            return self._expand_pname(token)
        if token.type == TokenType.BNODE:
            self.next()
            return BNode(token.value)
        if token.type == TokenType.STRING:
            self.next()
            lexical = token.value
            if self.peek().type == TokenType.LANGTAG:
                tag = self.next().value
                return Literal(lexical, language=tag)
            if self.at_punct("^^"):
                self.next()
                datatype_token = self.next()
                if datatype_token.type == TokenType.IRI:
                    return Literal(lexical, datatype=datatype_token.value)
                if datatype_token.type == TokenType.PNAME:
                    return Literal(
                        lexical,
                        datatype=self._expand_pname(datatype_token).value,
                    )
                raise self.error("expected datatype IRI", datatype_token)
            return Literal(lexical)
        if token.type == TokenType.INTEGER:
            self.next()
            return Literal(token.value, datatype=XSD_INTEGER)
        if token.type == TokenType.DECIMAL:
            self.next()
            return Literal(token.value, datatype=XSD_DECIMAL)
        if token.type == TokenType.DOUBLE:
            self.next()
            return Literal(token.value, datatype=XSD_DOUBLE)
        if token.type == TokenType.KEYWORD and token.value in ("TRUE", "FALSE"):
            self.next()
            return Literal(token.value.lower(), datatype=XSD_BOOLEAN)
        if token.type == TokenType.PUNCT and token.value in "+-":
            sign = self.next().value
            number = self.next()
            if number.type == TokenType.INTEGER:
                return Literal(sign + number.value, datatype=XSD_INTEGER)
            if number.type == TokenType.DECIMAL:
                return Literal(sign + number.value, datatype=XSD_DECIMAL)
            if number.type == TokenType.DOUBLE:
                return Literal(sign + number.value, datatype=XSD_DOUBLE)
            raise self.error("expected number after sign", number)
        raise self.error("expected RDF term")

    def _expand_pname(self, token: Token) -> URI:
        prefix, _, local = token.value.partition(":")
        base = self.prefixes.get(prefix)
        if base is None:
            raise self.error(f"unknown prefix {prefix!r}", token)
        return URI(base + local)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.at_punct("||"):
            self.next()
            left = BinaryExpr("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_relational()
        while self.at_punct("&&"):
            self.next()
            left = BinaryExpr("&&", left, self._parse_relational())
        return left

    def _parse_relational(self) -> Expression:
        left = self._parse_additive()
        token = self.peek()
        if token.type == TokenType.PUNCT and token.value in (
            "=",
            "!=",
            "<",
            ">",
            "<=",
            ">=",
        ):
            self.next()
            return BinaryExpr(token.value, left, self._parse_additive())
        if self.at_keyword("IN"):
            self.next()
            return InExpr(left, self._parse_expression_list(), negated=False)
        if self.at_keyword("NOT"):
            self.next()
            self.expect_keyword("IN")
            return InExpr(left, self._parse_expression_list(), negated=True)
        return left

    def _parse_expression_list(self) -> Tuple[Expression, ...]:
        self.expect_punct("(")
        items: List[Expression] = []
        if not self.at_punct(")"):
            items.append(self._parse_expression())
            while self.accept_punct(","):
                items.append(self._parse_expression())
        self.expect_punct(")")
        return tuple(items)

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self.at_punct("+", "-"):
            op = self.next().value
            left = BinaryExpr(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self.at_punct("*", "/"):
            op = self.next().value
            left = BinaryExpr(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expression:
        if self.at_punct("!"):
            self.next()
            return UnaryExpr("!", self._parse_unary())
        if self.at_punct("-"):
            self.next()
            return UnaryExpr("-", self._parse_unary())
        if self.at_punct("+"):
            self.next()
            return UnaryExpr("+", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.peek()
        if self.at_punct("("):
            self.next()
            expr = self._parse_expression()
            self.expect_punct(")")
            return expr
        if token.type == TokenType.VAR:
            self.next()
            return VarExpr(Var(token.value))
        if token.type == TokenType.KEYWORD:
            if token.value in _AGGREGATES:
                return self._parse_aggregate()
            if token.value in _BUILTIN_ARITY:
                return self._parse_builtin()
            if token.value in ("TRUE", "FALSE"):
                self.next()
                return TermExpr(
                    Literal(token.value.lower(), datatype=XSD_BOOLEAN)
                )
            if token.value == "NOT":
                self.next()
                self.expect_keyword("EXISTS")
                return ExistsExpr(self._parse_group_graph_pattern(), negated=True)
            if token.value == "EXISTS":
                self.next()
                return ExistsExpr(self._parse_group_graph_pattern())
            raise self.error("unexpected keyword in expression")
        term = self._parse_term(allow_var=False)
        if isinstance(term, BNode):
            raise self.error("blank node not allowed in expression")
        return TermExpr(term)  # type: ignore[arg-type]

    def _parse_aggregate(self) -> AggregateExpr:
        name = self.next().value
        self.expect_punct("(")
        distinct = bool(self.accept_keyword("DISTINCT"))
        argument: Optional[Expression]
        if self.at_punct("*"):
            if name != "COUNT":
                raise self.error("only COUNT accepts *")
            self.next()
            argument = None
        else:
            argument = self._parse_expression()
        separator = " "
        if name == "GROUP_CONCAT" and self.accept_punct(";"):
            self.expect_keyword("SEPARATOR")
            self.expect_punct("=")
            sep_token = self.next()
            if sep_token.type != TokenType.STRING:
                raise self.error("expected string separator", sep_token)
            separator = sep_token.value
        self.expect_punct(")")
        return AggregateExpr(name, argument, distinct=distinct, separator=separator)

    def _parse_builtin(self) -> FunctionCall:
        token = self.next()
        name = "IRI" if token.value == "URI" else token.value
        name = "ISIRI" if name == "ISURI" else name
        min_arity, max_arity = _BUILTIN_ARITY[token.value]
        self.expect_punct("(")
        args: List[Expression] = []
        if not self.at_punct(")"):
            args.append(self._parse_expression())
            while self.accept_punct(","):
                args.append(self._parse_expression())
        self.expect_punct(")")
        if not (min_arity <= len(args) <= max_arity):
            raise self.error(
                f"{token.value} expects between {min_arity} and {max_arity} "
                f"arguments, got {len(args)}",
                token,
            )
        return FunctionCall(name, tuple(args))


def parse_query(text: str) -> Query:
    """Parse SPARQL text into a :class:`repro.sparql.ast.Query`."""
    return Parser(text).parse()
