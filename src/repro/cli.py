"""Command-line interface: drive eLinda explorations from a shell.

Examples::

    python -m repro stats
    python -m repro chart dbo:Person --tab properties --top 12
    python -m repro path dbo:Agent dbo:Person dbo:Philosopher
    python -m repro connections dbo:Philosopher dbo:influencedBy
    python -m repro search Phil
    python -m repro sparql "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }"
    python -m repro fig4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import Direction
from .datasets import (
    DBpediaConfig,
    LGDConfig,
    YagoConfig,
    generate_dbpedia,
    generate_lgd,
    generate_yago,
    recommended_scale,
)
from .endpoint import (
    LocalEndpoint,
    REMOTE_VIRTUOSO_PROFILE,
    RemoteEndpoint,
    SimClock,
    SimulatedVirtuosoServer,
)
from .explorer import ExplorerSession, SettingsForm, render_chart
from .rdf import URI, default_namespace_manager
from .sparql import SparqlError

__all__ = ["main", "build_parser"]

_MANAGER = default_namespace_manager()


def _resolve_uri(text: str) -> URI:
    """Accept a full URI, an ``<uri>``, or a known qname like dbo:Person."""
    if text.startswith("<") and text.endswith(">"):
        return URI(text[1:-1])
    if text.startswith(("http://", "https://", "urn:")):
        return URI(text)
    try:
        return _MANAGER.expand(text)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"error: cannot resolve {text!r} as a URI ({exc})")


def _source_graph(args):
    """The ``(graph, root_class)`` pair from ``--load`` or the synthetic
    dataset flags — the text/generator boot path."""
    if getattr(args, "load", None):
        from .rdf import OWL, load_ntriples, parse_turtle

        path = args.load
        if path.endswith((".ttl", ".turtle")):
            with open(path, encoding="utf-8") as handle:
                graph = parse_turtle(handle.read())
        else:
            graph = load_ntriples(path)
        root = (
            _resolve_uri(args.root)
            if getattr(args, "root", None)
            else OWL.term("Thing")
        )
        return graph, root
    if args.dataset == "dbpedia":
        dataset = generate_dbpedia(DBpediaConfig(scale=args.scale, seed=args.seed))
        return dataset.graph, dataset.facts["thing"]
    if args.dataset == "yago":
        dataset = generate_yago(YagoConfig(seed=args.seed))
        return dataset.graph, dataset.facts["root"]
    dataset = generate_lgd(LGDConfig(seed=args.seed))
    from .rdf import OWL

    return dataset.graph, OWL.term("Thing")


def _build_session(args) -> ExplorerSession:
    snapshot_path = getattr(args, "snapshot", None)
    if snapshot_path:
        import os

        from .rdf import OWL
        from .rdf.snapshot import open_snapshot, write_snapshot

        if os.path.exists(snapshot_path):
            # Zero-copy boot: mmap the file, skip parsing entirely.
            graph = open_snapshot(snapshot_path)
            root = (
                _resolve_uri(args.root)
                if getattr(args, "root", None)
                else OWL.term("Thing")
            )
        else:
            # First boot: build from the text/generator source, persist,
            # then serve from the snapshot we just wrote.
            source, root = _source_graph(args)
            write_snapshot(source, snapshot_path)
            graph = open_snapshot(snapshot_path)
    else:
        graph, root = _source_graph(args)
    settings = SettingsForm(root_class=root)
    endpoint = LocalEndpoint(graph, clock=SimClock())
    return ExplorerSession(endpoint, settings=settings)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def _cmd_stats(args) -> int:
    session = _build_session(args)
    stats = session.dataset_statistics
    print(f"dataset:       {args.dataset}")
    print(f"triples:       {stats.total_triples:,}")
    print(f"classes:       {stats.class_count:,}")
    root = session.current_pane
    print(f"root class:    {root.pane_type.local_name}")
    print(f"root |S|:      {root.instance_count:,}")
    corner = root.corner_statistics()
    print(f"subclasses:    {corner.direct_subclasses} direct / "
          f"{corner.total_subclasses} total")
    return 0


def _cmd_chart(args) -> int:
    session = _build_session(args)
    cls = _resolve_uri(args.cls)
    pane = session.open_class_pane(cls)
    if args.tab == "subclasses":
        chart = pane.subclass_chart()
        title = f"Subclasses of {cls.local_name}"
    else:
        direction = (
            Direction.INCOMING if args.tab == "ingoing" else Direction.OUTGOING
        )
        pane.threshold_widget.set_threshold(args.threshold)
        chart = pane.significant_properties(direction)
        kind = "Ingoing" if args.tab == "ingoing" else "Outgoing"
        title = (
            f"{kind} properties of {cls.local_name} "
            f"(coverage >= {args.threshold:.0%})"
        )
    print(render_chart(chart, title=title, top=args.top))
    return 0


def _cmd_path(args) -> int:
    session = _build_session(args)
    pane = session.current_pane
    for step in args.classes:
        cls = _resolve_uri(step)
        try:
            pane = session.open_subclass_pane(pane, cls)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    print(session.render(top=args.top))
    return 0


def _cmd_connections(args) -> int:
    session = _build_session(args)
    cls = _resolve_uri(args.cls)
    prop = _resolve_uri(args.prop)
    pane = session.open_class_pane(cls)
    direction = Direction.INCOMING if args.incoming else Direction.OUTGOING
    try:
        chart = pane.connections_chart(prop, direction)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        render_chart(
            chart,
            title=(
                f"{cls.local_name} --{prop.local_name}--> objects by type"
                if not args.incoming
                else f"subjects by type --{prop.local_name}--> {cls.local_name}"
            ),
            top=args.top,
        )
    )
    return 0


def _cmd_search(args) -> int:
    session = _build_session(args)
    matches = session.autocomplete(args.prefix, limit=args.top)
    if not matches:
        print("(no matching classes)")
        return 0
    for entry in matches:
        qname = _MANAGER.qname(entry.cls) or entry.cls.value
        print(f"{qname:<40} {entry.instance_count:>8,} instances")
    return 0


def _cmd_sparql(args) -> int:
    session = _build_session(args)
    # Convenience: the standard prefixes are pre-declared, so qnames like
    # dbo:Person work without a prologue.  User PREFIX lines come after
    # and therefore win on conflict.
    prologue = "".join(
        f"PREFIX {prefix}: <{namespace}>\n" for prefix, namespace in _MANAGER
    )
    try:
        response = session.endpoint.query(prologue + args.query)
    except SparqlError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    result = response.result
    from .sparql import AskResult, GraphResult

    if isinstance(result, GraphResult):
        text = result.to_ntriples()
        lines = text.splitlines()
        print("\n".join(lines[: args.top]))
        if len(lines) > args.top:
            print(f"... ({len(lines) - args.top} more triples)")
        print(f"({len(result)} triples, {response.elapsed_ms:.2f} simulated ms)")
    elif isinstance(result, AskResult):
        print("yes" if result.value else "no")
    else:
        print(result.to_table(max_rows=args.top))
        print(f"({len(result.rows)} rows, {response.elapsed_ms:.2f} simulated ms)")
    return 0


def _cmd_query(args) -> int:
    """Time-sliced SELECT execution through the suspendable executor."""
    if args.self_test:
        return _executor_self_test(args)
    if not args.query:
        print("error: provide a query or --self-test", file=sys.stderr)
        return 2
    session = _build_session(args)
    endpoint = session.endpoint
    query_text = _prologue() + args.query
    quantum_ms = args.quantum_ms
    page_size = args.page_size
    if quantum_ms is None and page_size is None:
        page_size = 100
    try:
        if args.explain:
            from .obs import explain_physical

            explained = explain_physical(
                endpoint.graph,
                query_text,
                analyze=args.analyze,
                quantum_ms=quantum_ms,
                page_size=page_size,
            )
            print(explained.render())
            return 0
        rows: List[dict] = []
        variables: List[str] = []
        pages = 0
        simulated = 0.0
        response = endpoint.query(
            query_text, quantum_ms=quantum_ms, page_size=page_size
        )
        while True:
            pages += 1
            simulated += response.elapsed_ms
            rows.extend(response.result.rows)
            variables = response.result.vars
            token = response.continuation
            shown = f"{token[:24]}..." if token else "-"
            print(
                f"page {pages}: {len(response.result.rows)} rows  "
                f"complete={response.complete}  token={shown}"
            )
            if response.complete:
                break
            response = endpoint.query(
                query_text,
                quantum_ms=quantum_ms,
                page_size=page_size,
                continuation=token,
            )
    except SparqlError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    from .sparql import SelectResult

    result = SelectResult(variables, rows)
    print(result.to_table(max_rows=args.top))
    print(
        f"({len(rows)} rows over {pages} page(s), "
        f"{simulated:.2f} simulated ms)"
    )
    return 0


def _executor_self_test(args) -> int:
    """Executor smoke: paging equivalence, token hygiene, fair
    scheduling, and the suspension metrics (used by scripts/ci.sh)."""
    from .obs.metrics import REGISTRY
    from .sparql import executor as sparql_executor
    from .sparql.planner import build_physical_plan

    failures: List[str] = []

    def check(condition: bool, message: str) -> None:
        print(("ok: " if condition else "FAIL: ") + message)
        if not condition:
            failures.append(message)

    def counter(name: str, **labels) -> float:
        metric = REGISTRY.get(name)
        return metric.labels(**labels).value if labels else metric.value

    def multiset(rows):
        return sorted(
            tuple(sorted((k, v) for k, v in row.items())) for row in rows
        )

    session = _build_session(args)
    graph = session.endpoint.graph
    endpoint = LocalEndpoint(graph, clock=SimClock())
    query = _prologue() + (
        "SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?s ?p2 ?o2 } LIMIT 500"
    )

    # 1. Paged execution returns exactly the one-shot answer.
    one_shot_result = endpoint.select(query)
    one_shot = one_shot_result.rows
    paged: List[dict] = []
    pages = 0
    before_susp = counter("repro_exec_suspensions_total", reason="row_budget")
    before_resumes = counter("repro_exec_resumes_total")
    response = endpoint.query(query, page_size=64)
    while True:
        pages += 1
        paged.extend(response.result.rows)
        if response.complete:
            break
        response = endpoint.query(
            query, page_size=64, continuation=response.continuation
        )
    check(
        multiset(paged) == multiset(one_shot),
        f"paged multiset equals one-shot ({len(paged)} rows, {pages} pages)",
    )
    check(pages > 1, f"query actually paged ({pages} pages)")
    check(
        counter("repro_exec_suspensions_total", reason="row_budget")
        > before_susp,
        "row-budget suspension counter moved",
    )
    check(
        counter("repro_exec_resumes_total") > before_resumes,
        "token resume counter moved",
    )

    # 2. Token hygiene: malformed, cross-query, and expired tokens all
    # fail as clean protocol errors — never silently-wrong rows.
    before_rejects = counter(
        "repro_exec_token_rejects_total", reason="malformed"
    )
    try:
        endpoint.query(query, continuation="not-a-token")
        check(False, "garbage token rejected")
    except sparql_executor.MalformedTokenError:
        check(True, "garbage token rejected as MalformedTokenError")
    check(
        counter("repro_exec_token_rejects_total", reason="malformed")
        == before_rejects + 1,
        "malformed-token reject counter moved",
    )

    response = endpoint.query(query, page_size=16)
    token = response.continuation
    check(token is not None, "suspended query minted a continuation token")
    try:
        endpoint.query(
            _prologue() + "SELECT ?x WHERE { ?x ?y ?z }", continuation=token
        )
        check(False, "cross-query token rejected")
    except sparql_executor.MalformedTokenError:
        check(True, "token replayed against a different query is rejected")

    # The acceptance scenario: suspend, mutate the graph, resume.  The
    # token must be *invalidated*, not resumed against changed data.
    from .rdf import URI as _URI

    graph.add(
        _URI("http://example.org/exec-self-test"),
        _URI("http://example.org/p"),
        _URI("http://example.org/o"),
    )
    try:
        endpoint.query(query, continuation=token)
        check(False, "token expired by graph mutation")
    except sparql_executor.ExpiredTokenError:
        check(True, "graph mutation invalidates the suspended token")
    graph.remove(
        _URI("http://example.org/exec-self-test"),
        _URI("http://example.org/p"),
        _URI("http://example.org/o"),
    )

    # 3. Fair scheduling: concurrent plans interleave and all finish
    # with the right answers.
    scheduler = sparql_executor.RoundRobinScheduler(page_size=32)
    queries = {
        "spo": query,
        "count": _prologue()
        + "SELECT ?p (COUNT(?s) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p",
        "sorted": _prologue() + "SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s",
    }
    for name, text in queries.items():
        scheduler.submit(name, build_physical_plan(graph, text))
    order: List[str] = []
    finished = {name: [] for name in queries}
    while len(scheduler):
        for name, page in scheduler.run_round():
            order.append(name)
            finished[name].extend(page.rows)
    check(
        len(set(order[: len(queries)])) == len(queries),
        "round-robin serves every query before repeating any",
    )
    check(
        multiset(finished["spo"]) == multiset(one_shot),
        "scheduled execution matches the one-shot answer",
    )
    check(
        all(finished[name] for name in queries),
        "all scheduled queries ran to completion",
    )

    # 4. The encoded store: dictionary round-trip, ID-space scans, and
    # late materialization (load -> query -> page -> decode).
    import itertools

    from .rdf.dictionary import kind_of_id
    from .rdf.terms import BNode as _BNode
    from .sparql.results import SelectResult, results_to_json

    dictionary = graph.dictionary
    sample = list(itertools.islice(dictionary.terms(), 256))
    check(
        all(
            dictionary.decode(dictionary.encode(term)) is term
            for term in sample
        ),
        f"dictionary round-trip is identity on {len(sample)} interned terms",
    )

    def _kind(term) -> int:
        if isinstance(term, _URI):
            return 0
        return 1 if isinstance(term, _BNode) else 2

    check(
        all(
            kind_of_id(dictionary.encode(term)) == _kind(term)
            for term in sample
        ),
        "every ID lives in its kind's range (URI < BNode < Literal)",
    )
    encoded_scan = [
        dictionary.decode_triple(ids)
        for ids in itertools.islice(graph.triples_ids(), 64)
    ]
    term_scan = [
        tuple(triple) for triple in itertools.islice(graph.triples(), 64)
    ]
    check(
        encoded_scan == term_scan,
        "decoded ID-space scan equals the term-space scan, in order",
    )
    check(
        results_to_json(SelectResult(one_shot_result.vars, paged))
        == results_to_json(one_shot_result),
        "paged rows serialise to byte-identical SPARQL-JSON",
    )

    if failures:
        print(f"executor self-test failed ({len(failures)} checks)", file=sys.stderr)
        return 1
    print("executor self-test passed")
    return 0


def _build_serve_stack(args, graph, root):
    """The full serving stack: faulty wire -> router -> frontend."""
    from .endpoint import FaultInjector
    from .perf import Decomposer, ElindaEndpoint, HeavyQueryStore, MaterializedViews
    from .serve import BackoffPolicy, CircuitBreaker, ServeConfig, ServeFrontend

    clock = SimClock()
    faults = FaultInjector(
        transient_rate=args.fault_rate,
        slow_rate=args.slow_rate,
        seed=args.seed,
    )
    server = SimulatedVirtuosoServer(graph, clock=clock, faults=faults)
    # One set of materialized tables serves both the views route and the
    # decomposer (its build-once indexes are the same tables): mutable
    # stores keep them delta-fresh, snapshot stores fall back to
    # build-once semantics automatically.
    views = MaterializedViews(graph, clock=clock)
    elinda = ElindaEndpoint(
        RemoteEndpoint(server),
        hvs=HeavyQueryStore(clock=clock),
        views=views,
        decomposer=Decomposer(views, clock=clock),
        breaker=CircuitBreaker(
            clock=clock, failure_threshold=5, recovery_ms=500.0
        ),
    )
    frontend = ServeFrontend(
        elinda,
        clock=clock,
        config=ServeConfig(
            max_active=args.max_active,
            queue_capacity=max(args.sessions, 1),
            page_size=args.page_size,
            backoff=BackoffPolicy(max_retries=args.max_retries),
            seed=args.seed,
        ),
    )
    return frontend, server, elinda, clock


def _serve_workload(root) -> List[str]:
    """One session's exploration clicks: a decomposable chart query,
    a paged member expansion, a plain triple scan, and a hierarchy
    closure walk (property path — its BFS frontier state rides the
    continuation tokens, including across pool workers)."""
    from .core import MemberPattern, members_query, property_chart_query

    return [
        property_chart_query(MemberPattern.of_type(root), Direction.OUTGOING),
        members_query(MemberPattern.of_type(root), limit=200),
        _prologue() + "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 150",
        _prologue()
        + "SELECT ?c ?super WHERE { ?c rdfs:subClassOf* ?super }",
    ]


def _pool_snapshot(args):
    """The ``(snapshot_path, root, cleanup_dir)`` triple for a worker
    pool.  Workers boot by mmap'ing a snapshot *file*, so when no
    ``--snapshot`` was given the source graph is persisted to a
    temporary one (removed by the caller afterwards)."""
    import os
    import tempfile

    from .rdf import OWL
    from .rdf.snapshot import write_snapshot

    path = getattr(args, "snapshot", None)
    if path and os.path.exists(path):
        root = (
            _resolve_uri(args.root)
            if getattr(args, "root", None)
            else OWL.term("Thing")
        )
        return path, root, None
    source, root = _source_graph(args)
    cleanup = None
    if not path:
        cleanup = tempfile.mkdtemp(prefix="repro-pool-")
        path = os.path.join(cleanup, "pool.snapshot")
    write_snapshot(source, path)
    return path, root, cleanup


def _pool_config(args):
    from .serve import BackoffPolicy, ServeConfig

    return ServeConfig(
        max_active=args.max_active,
        queue_capacity=max(args.sessions, 1),
        page_size=args.page_size,
        backoff=BackoffPolicy(max_retries=args.max_retries),
        seed=args.seed,
    )


def _submit_serve_load(frontend, root, args) -> int:
    """Fill ``frontend`` with either the fixed closed-loop workload or
    ``--loadgen`` open-loop Zipf arrivals.  Returns the session count."""
    if getattr(args, "loadgen", 0) > 0:
        from .serve import LoadGenerator, demo_scenarios

        generator = LoadGenerator(
            demo_scenarios(root),
            rate_per_s=args.arrival_rate,
            seed=args.seed,
        )
        return len(generator.schedule(frontend, args.loadgen))
    workload = _serve_workload(root)
    for index in range(args.sessions):
        frontend.submit(f"session-{index}", workload)
    return args.sessions


def _print_serve_reports(reports) -> List:
    print(
        f"{'session':<24} {'outcome':<10} {'pages':>6} {'retries':>8} "
        f"{'billed ms':>11} {'wall ms':>10}"
    )
    for key in sorted(reports, key=str):
        report = reports[key]
        print(
            f"{str(key):<24} {report.outcome:<10} {report.pages:>6} "
            f"{report.retries:>8} {report.billed_ms:>11.1f} "
            f"{report.wall_ms:>10.1f}"
        )
    return [r for r in reports.values() if r.outcome == "completed"]


def _serve_pool(args) -> int:
    """Drive the sessions through a multi-process worker pool sharing
    one mmap snapshot."""
    import shutil

    from .serve import PoolFrontend

    snapshot_path, root, cleanup = _pool_snapshot(args)
    try:
        with PoolFrontend(
            snapshot_path, workers=args.workers, config=_pool_config(args)
        ) as frontend:
            submitted = _submit_serve_load(frontend, root, args)
            reports = frontend.run()
            completed = _print_serve_reports(reports)
            quanta = sum(w.quanta.value for w in frontend._workers)
            makespan_s = frontend.clock.now_ms / 1000.0
            rate = quanta / makespan_s if makespan_s > 0 else 0.0
            print(
                f"\n{len(completed)}/{submitted} sessions completed over "
                f"{frontend.worker_count} workers; {quanta:.0f} quanta in "
                f"{frontend.clock.now_ms:.1f} simulated ms "
                f"({rate:.0f} quanta/s aggregate)"
            )
        return 0 if len(completed) == len(reports) else 1
    finally:
        if cleanup:
            shutil.rmtree(cleanup, ignore_errors=True)


def _cmd_serve(args) -> int:
    """Drive N concurrent exploration sessions through the serving
    frontend, with optional fault injection on the simulated wire."""
    if args.self_test:
        if getattr(args, "workers", 0) > 0:
            return _pool_self_test(args)
        return _serve_self_test(args)
    if getattr(args, "workers", 0) > 0:
        return _serve_pool(args)
    session = _build_session(args)
    graph = session.endpoint.graph
    root = session.settings.root_class
    frontend, server, _, clock = _build_serve_stack(args, graph, root)
    _submit_serve_load(frontend, root, args)
    reports = frontend.run()
    completed = _print_serve_reports(reports)
    latencies = sorted(r.billed_ms for r in completed)

    def pct(fraction: float) -> float:
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, round(fraction * (len(latencies) - 1)))
        return latencies[index]

    print(
        f"\n{len(completed)}/{len(reports)} sessions completed; "
        f"p50 {pct(0.5):.1f} ms, p95 {pct(0.95):.1f} ms billed; "
        f"{server.faults.injected_transient if server.faults else 0} transient / "
        f"{server.faults.injected_slow if server.faults else 0} slow faults injected; "
        f"makespan {clock.now_ms:.1f} simulated ms"
    )
    return 0 if len(completed) == len(reports) else 1


def _serve_self_test(args) -> int:
    """Serving-layer smoke: all sessions complete under injected
    faults, results are correct, and the retry/breaker/serve metrics
    move (used by scripts/ci.sh)."""
    from .obs.metrics import REGISTRY
    from .serve import BackoffPolicy, CircuitBreaker, CircuitOpenError

    failures: List[str] = []

    def check(condition: bool, message: str) -> None:
        print(("ok: " if condition else "FAIL: ") + message)
        if not condition:
            failures.append(message)

    def counter(name: str, **labels) -> float:
        metric = REGISTRY.get(name)
        return metric.labels(**labels).value if labels else metric.value

    def multiset(rows):
        return sorted(
            tuple(sorted((k, v.n3()) for k, v in row.items())) for row in rows
        )

    session = _build_session(args)
    graph = session.endpoint.graph
    root = session.settings.root_class
    args.fault_rate = max(args.fault_rate, 0.1)
    frontend, server, elinda, clock = _build_serve_stack(args, graph, root)
    workload = _serve_workload(root)
    sessions = max(args.sessions, 8)

    before_retries = counter("repro_retry_attempts_total", reason="transient")
    for index in range(sessions):
        frontend.submit(f"session-{index}", workload)
    reports = frontend.run()

    check(
        all(r.outcome == "completed" for r in reports.values()),
        f"all {len(reports)} sessions completed under "
        f"{args.fault_rate:.0%} injected transient faults",
    )
    reference = LocalEndpoint(graph, clock=SimClock())
    expected = [multiset(reference.select(query).rows) for query in workload]
    check(
        all(
            multiset(report.rows[i]) == expected[i]
            for report in reports.values()
            for i in range(len(workload))
        ),
        "every session's paged rows equal the one-shot reference rows",
    )
    check(
        server.faults.injected_transient > 0,
        f"faults were actually injected "
        f"({server.faults.injected_transient} transient)",
    )
    check(
        counter("repro_retry_attempts_total", reason="transient")
        > before_retries,
        "transient retry counter moved",
    )
    check(
        counter("repro_serve_sessions_total", outcome="completed")
        >= len(reports),
        "serve session-outcome counter moved",
    )

    # Circuit breaker: hard-fail the wire, watch it open, and check the
    # fallback ladder still answers what the HVS/decomposer can.
    server.faults.transient_rate = 1.0
    breaker = elinda.breaker
    before_opens = counter("repro_breaker_transitions_total", state="open")
    chart_query = workload[0]
    light = _prologue() + "SELECT ?s WHERE { ?s ?p ?o } LIMIT 5"
    from .endpoint import TransientWireError

    for _ in range(breaker.failure_threshold):
        try:
            elinda.query(light)
        except TransientWireError:
            pass
    check(breaker.state == "open", "breaker opens after consecutive faults")
    check(
        counter("repro_breaker_transitions_total", state="open")
        == before_opens + 1,
        "breaker open-transition counter moved",
    )
    before_short = counter("repro_breaker_short_circuits_total")
    try:
        elinda.query(light)
        check(False, "backend-only query short-circuits while open")
    except CircuitOpenError:
        check(True, "backend-only query raises CircuitOpenError while open")
    check(
        counter("repro_breaker_short_circuits_total") > before_short,
        "short-circuit counter moved",
    )
    # The fallback ladder: a decomposable query is still answered while
    # the backend is unreachable (its simulated elapsed may out-wait the
    # recovery window, which is fine — the ladder, not the clock, is
    # what this check is about).
    response = elinda.query(chart_query)
    check(
        response.source in ("views", "decomposer", "hvs"),
        f"decomposable query still answered while open (via {response.source})",
    )
    server.faults.transient_rate = 0.0
    clock.advance(breaker.recovery_ms)
    check(breaker.state == "half_open", "breaker half-opens after recovery")
    response = elinda.query(light)
    check(
        response.source == "virtuoso" and breaker.state == "closed",
        "a successful half-open probe closes the breaker",
    )

    if failures:
        print(f"serve self-test failed ({len(failures)} checks)", file=sys.stderr)
        return 1
    print("serve self-test passed")
    return 0


def _pool_self_test(args) -> int:
    """Worker-pool smoke: sessions served over forked workers produce
    byte-identical pages to single-process serving, a crashed worker is
    respawned without losing sessions, open-loop arrivals drain, and the
    pool/loadgen metrics move (used by scripts/ci.sh)."""
    import os
    import shutil
    import tempfile

    from .obs.metrics import REGISTRY
    from .rdf.snapshot import write_snapshot
    from .serve import LoadGenerator, PoolFrontend, demo_scenarios

    failures: List[str] = []

    def check(condition: bool, message: str) -> None:
        print(("ok: " if condition else "FAIL: ") + message)
        if not condition:
            failures.append(message)

    def counter(name: str, **labels) -> float:
        metric = REGISTRY.get(name)
        return metric.labels(**labels).value if labels else metric.value

    def rendered(rows):
        # Ordered, not a multiset: pool pages must be *byte-identical*
        # to the single-process reference, including row order.
        return [
            tuple(sorted((k, v.n3()) for k, v in row.items()))
            for row in rows
        ]

    source, root = _source_graph(args)
    workdir = tempfile.mkdtemp(prefix="repro-pool-selftest-")
    snapshot_path = os.path.join(workdir, "pool.snapshot")
    write_snapshot(source, snapshot_path)
    workers = max(args.workers, 2)
    workload = _serve_workload(root)
    sessions = max(args.sessions, 8)

    try:
        reference = LocalEndpoint(source, clock=SimClock())
        expected = [rendered(reference.select(query).rows) for query in workload]
        before_decodes = counter("repro_dict_decode_total")

        with PoolFrontend(
            snapshot_path, workers=workers, config=_pool_config(args)
        ) as frontend:
            check(
                frontend.alive_count() == workers,
                f"{workers} workers alive after boot",
            )
            for index in range(sessions):
                frontend.submit(f"session-{index}", workload)
            # Kill one worker before the first round: its sessions must
            # be resumed on the respawned process from their tokens.
            frontend.crash_worker(0)
            reports = frontend.run()
            check(
                all(r.outcome == "completed" for r in reports.values()),
                f"all {len(reports)} sessions completed across the crash",
            )
            check(
                all(
                    rendered(report.rows[i]) == expected[i]
                    for report in reports.values()
                    for i in range(len(workload))
                ),
                "pool pages are byte-identical to single-process serving",
            )
            check(
                counter("repro_pool_worker_restarts_total") >= 1,
                "the crashed worker was respawned",
            )
            quanta = sum(w.quanta.value for w in frontend._workers)
            check(quanta > 0, f"workers executed {quanta:.0f} quanta")
            check(
                counter("repro_pool_dispatches_total", route="affinity") > 0,
                "affinity routing dispatched quanta",
            )
            check(
                counter("repro_pool_workers") == workers,
                "pool worker gauge tracks the fleet",
            )
            check(
                counter("repro_dict_decode_total") > before_decodes,
                "worker registries merged into the parent "
                "(decode counter moved without parent-side execution)",
            )

            # Open-loop arrivals through the same pool.
            generator = LoadGenerator(
                demo_scenarios(root),
                rate_per_s=args.arrival_rate,
                seed=args.seed,
            )
            keys = generator.schedule(frontend, 12)
            reports = frontend.run()
            outcomes = [reports[key].outcome for key in keys]
            # Open loop: arrivals do not wait for capacity, so admission
            # control may shed some — but every admitted session must
            # finish, and the pool must absorb most of the offered load.
            check(
                all(o in ("completed", "rejected") for o in outcomes)
                and outcomes.count("completed") >= 8,
                f"12 open-loop Zipf arrivals: "
                f"{outcomes.count('completed')} served, "
                f"{outcomes.count('rejected')} shed by admission control, "
                f"none failed",
            )

            # Replace the snapshot file under the live mmap: every
            # worker's next heartbeat must flag it stale (they keep
            # serving the pinned pages — consistently old, never torn).
            replacement = snapshot_path + ".new"
            write_snapshot(source, replacement)
            os.replace(replacement, snapshot_path)
            health = frontend.heartbeat()
            check(
                all(state == "stale" for state in health.values()),
                "heartbeat flags a replaced snapshot as stale on "
                "every worker",
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if failures:
        print(f"pool self-test failed ({len(failures)} checks)", file=sys.stderr)
        return 1
    print("pool self-test passed")
    return 0


def _cmd_demo(args) -> int:
    """The Section 5 demonstration walkthrough, scripted."""
    from .core import equals_filter
    from .datasets import generate_dbpedia, inject_birthplace_errors
    from .explorer import QueryMonitor, Tab

    config = DBpediaConfig(scale=args.scale, seed=args.seed)
    dataset = generate_dbpedia(config)
    inject_birthplace_errors(dataset, count=4)
    session = ExplorerSession(LocalEndpoint(dataset.graph, clock=SimClock()))
    monitor = QueryMonitor(session.endpoint, heavy_threshold_ms=5.0)

    print("=== Scenario 1: understanding a large, unfamiliar dataset ===")
    stats = session.dataset_statistics
    print(f"{stats.total_triples:,} triples, {stats.class_count} classes")
    chart = session.current_pane.subclass_chart()
    print(render_chart(chart, title="First-level classes", top=8))
    largest = chart.sorted_bars()[0]
    largest_pane = session.open_subclass_pane(session.current_pane, largest.label)
    top_properties = largest_pane.property_chart(Direction.OUTGOING).top(20)
    print(
        f"\nThe 20 most significant properties of {largest.label.local_name}: "
        + ", ".join(bar.label.local_name for bar in top_properties[:8])
        + ", ..."
    )

    print("\n=== Scenario 2: a sophisticated exploration path ===")
    pane = session.panes[0]
    for cls in ("Agent", "Person", "Philosopher"):
        pane = session.open_subclass_pane(pane, _resolve_uri(f"dbo:{cls}"))
    pane.switch_tab(Tab.CONNECTIONS)
    connections = pane.connections_chart(_resolve_uri("dbo:influencedBy"))
    print(render_chart(connections, title="Types of people influencing philosophers", top=6))

    print("\n=== Scenario 3: erroneous data detection ===")
    person_pane = session.panes[2]
    birth_connections = person_pane.connections_chart(_resolve_uri("dbo:birthPlace"))
    food_bar = birth_connections.get(_resolve_uri("dbo:Food"))
    if food_bar is not None and food_bar.size:
        print(
            f"suspicious: {food_bar.size} birth places are of type Food!"
        )
        for food in sorted(
            session.engine.materialise(food_bar).uris, key=lambda uri: uri.value
        ):
            print(f"  {food.local_name}")
    else:
        print("no erroneous birth places found")

    print("\n=== Query monitor ===")
    print(monitor.render())
    return 0


def _cmd_fig4(args) -> int:
    from .core import MemberPattern, property_chart_query
    from .datasets.dbpedia import OWL_THING
    from .perf import Decomposer, HeavyQueryStore, SpecializedIndexes

    config = DBpediaConfig(scale=args.scale, seed=args.seed)
    dataset = generate_dbpedia(config)
    clock = SimClock()
    server = SimulatedVirtuosoServer(
        dataset.graph,
        clock=clock,
        cost_model=REMOTE_VIRTUOSO_PROFILE.scaled(recommended_scale(config)),
    )
    remote = RemoteEndpoint(server)
    decomposer = Decomposer(SpecializedIndexes(dataset.graph), clock=clock)
    hvs = HeavyQueryStore(clock=clock)
    paper = {
        ("virtuoso", "outgoing"): "454 s",
        ("virtuoso", "incoming"): "124 s",
        ("decomposer", "outgoing"): "1.5 s",
        ("decomposer", "incoming"): "1.2 s",
        ("hvs", "outgoing"): "~80 ms",
        ("hvs", "incoming"): "~80 ms",
    }
    print(f"{'configuration':<14} {'direction':<10} {'paper':>8} {'measured':>12}")
    for direction in (Direction.OUTGOING, Direction.INCOMING):
        query = property_chart_query(MemberPattern.of_type(OWL_THING), direction)
        response = remote.query(query)
        hvs.record(query, response.result, response.elapsed_ms, 0)
        cells = {
            "virtuoso": response.elapsed_ms,
            "decomposer": decomposer.try_answer(query).elapsed_ms,
            "hvs": hvs.lookup(query, 0).elapsed_ms,
        }
        for configuration, measured in cells.items():
            shown = (
                f"{measured / 1000:.2f} s"
                if measured >= 1000
                else f"{measured:.0f} ms"
            )
            print(
                f"{configuration:<14} {direction.value:<10} "
                f"{paper[(configuration, direction.value)]:>8} {shown:>12}"
            )
    return 0


def _prologue() -> str:
    return "".join(
        f"PREFIX {prefix}: <{namespace}>\n" for prefix, namespace in _MANAGER
    )


def _cmd_explain(args) -> int:
    """EXPLAIN / EXPLAIN ANALYZE a query's algebra plan."""
    if args.self_test:
        return _explain_self_test(args)
    from .obs import explain

    session = _build_session(args)
    graph = session.endpoint.graph
    if args.chart:
        from .core import MemberPattern, property_chart_query

        cls = _resolve_uri(args.chart)
        direction = (
            Direction.INCOMING if args.tab == "ingoing" else Direction.OUTGOING
        )
        query_text = property_chart_query(MemberPattern.of_type(cls), direction)
    elif args.query:
        query_text = _prologue() + args.query
    else:
        print(
            "error: provide a query, --chart CLASS, or --self-test",
            file=sys.stderr,
        )
        return 2
    try:
        explained = explain(
            graph, query_text, analyze=args.analyze, optimize=args.optimize
        )
    except SparqlError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(explained.to_json())
        if args.analyze:
            print(explained.to_json_lines())
    else:
        print(explained.render())
    return 0


def _explain_self_test(args) -> int:
    """End-to-end smoke: EXPLAIN ANALYZE row accounting and the perf
    counters moving when HVS/decomposer are toggled (used by CI)."""
    from .core import MemberPattern, property_chart_query
    from .obs import explain
    from .obs.metrics import REGISTRY
    from .perf import Decomposer, ElindaEndpoint, HeavyQueryStore, SpecializedIndexes

    failures: List[str] = []

    def check(condition: bool, message: str) -> None:
        print(("ok: " if condition else "FAIL: ") + message)
        if not condition:
            failures.append(message)

    session = _build_session(args)
    graph = session.endpoint.graph
    root = session.settings.root_class
    query = property_chart_query(MemberPattern.of_type(root), Direction.OUTGOING)

    # 1. EXPLAIN ANALYZE: the root operator's actual rows must equal the
    # SELECT's result rows, measured independently.
    explained = explain(graph, query, analyze=True)
    select_rows = len(session.endpoint.select(query).rows)
    check(
        explained.plan.actual_rows == select_rows,
        f"root operator rows ({explained.plan.actual_rows}) match SELECT "
        f"result rows ({select_rows})",
    )
    check(
        explained.result_rows == select_rows,
        "analyze run produced the same result cardinality",
    )
    check(
        all(
            plan.actual_rows is not None and plan.wall_ms is not None
            for plan in explained.plan.walk()
        ),
        "every operator reports actual rows and wall time",
    )

    # 2. Perf counters move when the solutions are toggled on/off.
    def counter(name: str, **labels) -> float:
        metric = REGISTRY.get(name)
        return metric.labels(**labels).value if labels else metric.value

    backend = LocalEndpoint(graph, clock=SimClock())
    elinda = ElindaEndpoint(
        backend,
        hvs=HeavyQueryStore(threshold_ms=0.000001),
        decomposer=Decomposer(SpecializedIndexes(graph)),
    )

    before = counter("repro_decomposer_requests_total", outcome="rewritten")
    elinda.query(query)
    check(
        counter("repro_decomposer_requests_total", outcome="rewritten")
        == before + 1,
        "decomposer rewrite counter moves when the decomposer is on",
    )

    elinda.use_decomposer = False
    before = counter("repro_decomposer_requests_total", outcome="rewritten")
    before_miss = counter("repro_hvs_lookups_total", outcome="miss")
    elinda.query(query)  # falls through to the backend, stored as heavy
    check(
        counter("repro_decomposer_requests_total", outcome="rewritten")
        == before,
        "decomposer rewrite counter stays flat when the decomposer is off",
    )
    check(
        counter("repro_hvs_lookups_total", outcome="miss") == before_miss + 1,
        "HVS miss counter moves on the first backend round-trip",
    )

    before_hit = counter("repro_hvs_lookups_total", outcome="hit")
    elinda.query(query)  # now answered from the HVS
    check(
        counter("repro_hvs_lookups_total", outcome="hit") == before_hit + 1,
        "HVS hit counter moves when the cached query repeats",
    )

    elinda.use_hvs = False
    before_hit = counter("repro_hvs_lookups_total", outcome="hit")
    before_miss = counter("repro_hvs_lookups_total", outcome="miss")
    elinda.query(query)
    check(
        counter("repro_hvs_lookups_total", outcome="hit") == before_hit
        and counter("repro_hvs_lookups_total", outcome="miss") == before_miss,
        "HVS counters stay flat when the HVS is off",
    )

    # 3. Optimizer: ORDER BY + LIMIT fuses into TopK, and the optimized
    # plan returns the same rows as the raw translation.
    topk_query = _prologue() + (
        "SELECT ?s ?o WHERE { ?s ?p ?o } ORDER BY ?s ?o LIMIT 7"
    )
    optimized = explain(graph, topk_query, optimize=True)
    check(
        any(plan.label == "TopK" for plan in optimized.plan.walk()),
        "ORDER BY + LIMIT executes through a TopK operator",
    )
    check(
        optimized.pre_plan is not None
        and all(plan.label != "TopK" for plan in optimized.pre_plan.walk()),
        "the pre-optimization plan still shows the full sort",
    )
    check(
        any(pass_name == "top_k_fusion" for pass_name, _ in optimized.passes),
        "the plan carries per-pass optimizer annotations",
    )
    raw_endpoint = LocalEndpoint(
        graph, clock=SimClock(), optimize=False, plan_cache=False
    )
    raw_rows = raw_endpoint.query(topk_query).result.rows
    opt_endpoint = LocalEndpoint(graph, clock=SimClock())
    opt_rows = opt_endpoint.query(topk_query).result.rows
    check(raw_rows == opt_rows or sorted(
        tuple(sorted(row.items())) for row in raw_rows
    ) == sorted(tuple(sorted(row.items())) for row in opt_rows),
        "optimized and unoptimized plans return the same rows",
    )

    # 4. Plan cache: a repeated query hits, a graph update invalidates.
    before_hits = counter("repro_plancache_requests_total", outcome="hit")
    opt_endpoint.query(topk_query)
    check(
        counter("repro_plancache_requests_total", outcome="hit")
        == before_hits + 1,
        "repeating a query hits the plan cache",
    )
    before_invalidations = counter("repro_plancache_invalidations_total")
    from .rdf import URI as _URI

    graph.add(
        _URI("http://example.org/self-test"),
        _URI("http://example.org/p"),
        _URI("http://example.org/o"),
    )
    opt_endpoint.query(topk_query)
    check(
        counter("repro_plancache_invalidations_total")
        == before_invalidations + 1,
        "a graph update invalidates the cached plan",
    )
    graph.remove(
        _URI("http://example.org/self-test"),
        _URI("http://example.org/p"),
        _URI("http://example.org/o"),
    )

    if failures:
        print(f"self-test failed ({len(failures)} checks)", file=sys.stderr)
        return 1
    print("self-test passed")
    return 0


def _cmd_snapshot(args) -> int:
    """Build or inspect a persistent mmap snapshot file."""
    if args.self_test:
        return _snapshot_self_test(args)
    from .rdf.snapshot import snapshot_info, write_snapshot

    if args.action == "build":
        if not args.file:
            print("error: snapshot build needs an output path", file=sys.stderr)
            return 2
        graph, _ = _source_graph(args)
        file_bytes = write_snapshot(graph, args.file)
        print(
            f"wrote {args.file}: {len(graph):,} triples, "
            f"{len(graph.dictionary):,} terms, {file_bytes:,} bytes"
        )
        return 0
    if args.action == "info":
        if not args.file:
            print("error: snapshot info needs a file path", file=sys.stderr)
            return 2
        from .rdf.snapshot import SnapshotError

        try:
            info = snapshot_info(args.file)
        except (OSError, SnapshotError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        terms = info["terms"]
        print(f"path:            {info['path']}")
        print(f"format version:  {info['format_version']}")
        print(f"file bytes:      {info['file_bytes']:,}")
        print(f"payload crc32:   {info['checksum_crc32']}")
        print(f"triples:         {info['triples']:,}")
        print(
            f"terms:           {terms['uri']:,} uri / {terms['bnode']:,} "
            f"bnode / {terms['literal']:,} literal"
        )
        print(f"{'section':<16} {'offset':>12} {'bytes':>12}")
        for section in info["sections"]:
            print(
                f"{section['name']:<16} {section['offset']:>12,} "
                f"{section['bytes']:>12,}"
            )
        return 0
    print("error: provide an action (build/info) or --self-test", file=sys.stderr)
    return 2


def _snapshot_self_test(args) -> int:
    """Snapshot smoke: deterministic builds, reopen parity, byte-identical
    paged SPARQL-JSON, corruption handling, and read-only enforcement
    (used by scripts/ci.sh)."""
    import os
    import struct as _struct
    import tempfile

    from .rdf import snapshot as rdf_snapshot
    from .sparql.results import results_to_json

    failures: List[str] = []

    def check(condition: bool, message: str) -> None:
        print(("ok: " if condition else "FAIL: ") + message)
        if not condition:
            failures.append(message)

    graph, _root = _source_graph(args)

    # 1. Determinism: the same graph state serialises byte-for-byte.
    image = rdf_snapshot.build_snapshot_bytes(graph)
    check(
        image == rdf_snapshot.build_snapshot_bytes(graph),
        f"snapshot build is deterministic ({len(image):,} bytes)",
    )

    # 2. Write -> reopen parity: counts, dictionary, statistics.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "self-test.snap")
        rdf_snapshot.write_snapshot(graph, path)
        snap = rdf_snapshot.open_snapshot(path)
        check(len(snap) == len(graph), "reopened triple count matches")
        check(
            snap.dictionary.size_by_kind() == graph.dictionary.size_by_kind(),
            "reopened dictionary sizes match by kind",
        )
        mem_stats, snap_stats = graph.statistics(), snap.statistics()
        check(
            mem_stats.predicate_triples == snap_stats.predicate_triples
            and mem_stats.class_instances == snap_stats.class_instances
            and mem_stats.distinct_subjects == snap_stats.distinct_subjects,
            "reopened statistics match the in-memory build",
        )

        # 3. Paged serving parity: byte-identical SPARQL-JSON page by page.
        query = _prologue() + (
            "SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?s ?p2 ?o2 } LIMIT 400"
        )

        def pages(store) -> List[str]:
            endpoint = LocalEndpoint(store, clock=SimClock())
            out: List[str] = []
            response = endpoint.query(query, page_size=64)
            out.append(results_to_json(response.result))
            while not response.complete:
                response = endpoint.query(
                    query, page_size=64, continuation=response.continuation
                )
                out.append(results_to_json(response.result))
            return out

        mem_pages = pages(graph)
        snap_pages = pages(snap)
        check(
            mem_pages == snap_pages,
            f"paged SPARQL-JSON is byte-identical over the snapshot "
            f"({len(snap_pages)} pages)",
        )
        check(len(snap_pages) > 1, f"query actually paged ({len(snap_pages)} pages)")

        # 4. EXPLAIN runs over the snapshot unchanged.
        from .obs import explain

        explained = explain(snap, query, analyze=True)
        check(
            explained.plan.actual_rows is not None,
            "EXPLAIN ANALYZE executes over the snapshot",
        )

        # 5. Read-only enforcement.
        from .rdf import URI as _URI

        try:
            snap.add(_URI("e:s"), _URI("e:p"), _URI("e:o"))
            check(False, "mutation rejected on a snapshot")
        except rdf_snapshot.SnapshotReadOnlyError:
            check(True, "mutation raises SnapshotReadOnlyError")
        snap.close()

    # 6. Corruption: typed errors, never a crash or a silent wrong answer.
    bad = bytearray(image)
    bad[0] ^= 0xFF
    try:
        rdf_snapshot.SnapshotGraph.from_bytes(bytes(bad))
        check(False, "bad magic rejected")
    except rdf_snapshot.SnapshotMagicError:
        check(True, "bad magic raises SnapshotMagicError")
    try:
        rdf_snapshot.SnapshotGraph.from_bytes(image[: len(image) // 2])
        check(False, "truncated file rejected")
    except rdf_snapshot.SnapshotTruncatedError:
        check(True, "truncation raises SnapshotTruncatedError")
    bad = bytearray(image)
    bad[-1] ^= 0xFF
    try:
        rdf_snapshot.SnapshotGraph.from_bytes(bytes(bad))
        check(False, "checksum mismatch rejected")
    except rdf_snapshot.SnapshotChecksumError:
        check(True, "bit rot raises SnapshotChecksumError")
    bad = bytearray(image)
    _struct.pack_into("<I", bad, 8, rdf_snapshot.FORMAT_VERSION + 7)
    try:
        rdf_snapshot.SnapshotGraph.from_bytes(bytes(bad))
        check(False, "future version rejected")
    except rdf_snapshot.SnapshotVersionError:
        check(True, "unknown format version raises SnapshotVersionError")

    if failures:
        print(
            f"snapshot self-test failed ({len(failures)} checks)",
            file=sys.stderr,
        )
        return 1
    print("snapshot self-test passed")
    return 0


def _cmd_metrics(args) -> int:
    """Dump the process-wide metrics registry (Prometheus text format)."""
    from .obs.metrics import REGISTRY

    if args.exercise:
        from .perf import (
            Decomposer,
            ElindaEndpoint,
            HeavyQueryStore,
            IncrementalConfig,
            IncrementalEvaluator,
            MaterializedViews,
            SpecializedIndexes,
        )
        from .core import MemberPattern, property_chart_query

        REGISTRY.reset()
        session = _build_session(args)
        graph = session.endpoint.graph
        root = session.settings.root_class
        query = property_chart_query(
            MemberPattern.of_type(root), Direction.OUTGOING
        )
        clock = SimClock()
        elinda = ElindaEndpoint(
            LocalEndpoint(graph, clock=clock, trace=True),
            hvs=HeavyQueryStore(threshold_ms=0.000001, clock=clock),
            views=MaterializedViews(graph, clock=clock),
            decomposer=Decomposer(SpecializedIndexes(graph), clock=clock),
        )
        elinda.query(query)                       # views hit
        elinda.use_views = False
        elinda.query(query)                       # decomposer rewrite
        elinda.use_decomposer = False
        elinda.query(query)                       # backend, stored as heavy
        elinda.query(query)                       # HVS hit
        direct = LocalEndpoint(graph, clock=clock)
        topk = "SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s LIMIT 3"
        direct.query(topk)                        # optimizer + plan-cache miss
        direct.query(topk)                        # plan-cache hit
        server = SimulatedVirtuosoServer(graph, clock=clock)
        RemoteEndpoint(server).query(
            "SELECT ?s WHERE { ?s ?p ?o } LIMIT 5"
        )                                          # remote + wire encode
        IncrementalEvaluator(
            graph, IncrementalConfig(window_size=500, max_steps=2), clock=clock
        ).run_to_completion(query)                 # incremental windows
    print(REGISTRY.render(), end="")
    return 0


def _cmd_views(args) -> int:
    """Materialized chart views: summary, or the CI self-test."""
    if args.self_test:
        return _views_self_test(args)
    from .core.model import Direction as Dir
    from .perf import MaterializedViews

    session = _build_session(args)
    views = MaterializedViews(session.endpoint.graph)
    state = views.table_state()
    print(f"classes with instances : {len(state['instances'])}")
    print(f"typed nodes            : {len(state['types'])}")
    print(f"class/direction entries: {len(state['class_props'])}")
    print(f"superclasses tracked   : {len(state['subclasses'])}")
    root = session.settings.root_class
    rows = views.property_expansion([root], Dir.OUTGOING) or []
    print(f"root property bars     : {len(rows)} ({root.value})")
    return 0


def _views_self_test(args) -> int:
    """End-to-end smoke: every chart shape served by the views route,
    row-identical to the backend, and delta maintenance across
    add/remove/bulk_load equal to a from-scratch rebuild (used by CI)."""
    from .core import (
        MemberPattern,
        count_query,
        object_chart_query,
        property_chart_query,
        subclass_chart_query,
    )
    from .obs.metrics import REGISTRY
    from .perf import Decomposer, ElindaEndpoint, HeavyQueryStore, MaterializedViews
    from .rdf.graph import Graph
    from .rdf.terms import URI
    from .rdf.vocab import RDF

    failures: List[str] = []

    def check(condition: bool, message: str) -> None:
        print(("ok: " if condition else "FAIL: ") + message)
        if not condition:
            failures.append(message)

    def counter(name: str, **labels) -> float:
        metric = REGISTRY.get(name)
        return metric.labels(**labels).value if labels else metric.value

    def canon(result):
        return sorted(
            tuple(sorted((name, term.n3()) for name, term in row.items()))
            for row in result.rows
        )

    session = _build_session(args)
    # A mutable working copy: the self-test edits the graph, and the
    # session's graph may be a read-only snapshot.
    graph = Graph(list(session.endpoint.graph.triples()))
    root = session.settings.root_class
    clock = SimClock()
    views = MaterializedViews(graph, clock=clock)
    elinda = ElindaEndpoint(
        LocalEndpoint(graph, clock=clock),
        hvs=HeavyQueryStore(clock=clock),
        views=views,
        decomposer=Decomposer(views, clock=clock),
    )
    reference = LocalEndpoint(graph, clock=SimClock())

    pattern = MemberPattern.of_type(root)
    rdf_type = RDF.term("type")
    shapes = [
        ("property chart", property_chart_query(pattern, Direction.OUTGOING)),
        ("subclass chart", subclass_chart_query(pattern, root)),
        ("bar count", count_query(pattern)),
    ]
    conn_prop = next(
        (
            row.prop
            for row in views.property_expansion([root], Direction.OUTGOING)
            if row.prop != rdf_type
        ),
        None,
    )
    if conn_prop is not None:
        shapes.append(
            (
                "connections chart",
                object_chart_query(pattern, conn_prop, Direction.OUTGOING),
            )
        )
    for label, query in shapes:
        before = counter("repro_router_queries_total", route="views")
        response = elinda.query(query)
        check(
            response.source == "views"
            and counter("repro_router_queries_total", route="views")
            == before + 1,
            f"{label} answered by the views route",
        )
        check(
            canon(response.result) == canon(reference.select(query)),
            f"{label} rows identical to the backend",
        )

    # Interleaved mutations: the views must stay fresh and exact with
    # no full rebuild, only per-triple deltas.
    before_add = counter("repro_view_deltas_total", op="add")
    before_remove = counter("repro_view_deltas_total", op="remove")
    member = min(views.instances(root), key=lambda term: term.value)
    probe = URI("http://example.org/views-self-test#probe")
    graph.add(probe, rdf_type, root)
    graph.remove(member, rdf_type, root)
    graph.bulk_load(
        [
            (probe, conn_prop or rdf_type, member),
            (member, rdf_type, root),  # put the member back, batched
        ]
    )
    check(views.is_fresh, "views stay fresh across add/remove/bulk_load")
    check(
        counter("repro_view_deltas_total", op="add") >= before_add + 3
        and counter("repro_view_deltas_total", op="remove")
        == before_remove + 1,
        "every mutation arrived as a delta",
    )
    rebuilt = MaterializedViews(graph, track=False)
    check(
        views.table_state() == rebuilt.table_state(),
        "delta-maintained tables equal a from-scratch rebuild",
    )
    post = property_chart_query(pattern, Direction.INCOMING)
    response = elinda.query(post)
    check(
        response.source == "views",
        "post-mutation chart still served from the views (no staleness)",
    )
    check(
        canon(response.result) == canon(reference.select(post)),
        "post-mutation rows identical to the backend",
    )

    if failures:
        print(f"views self-test failed ({len(failures)} checks)", file=sys.stderr)
        return 1
    print("views self-test passed")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="eLinda — explorer for Linked Data (EDBT 2018 reproduction)",
    )
    parser.add_argument(
        "--dataset",
        choices=["dbpedia", "lgd", "yago"],
        default="dbpedia",
        help="synthetic dataset to explore (default: dbpedia)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DBpediaConfig().scale,
        help="DBpedia instance-count scale factor",
    )
    parser.add_argument("--seed", type=int, default=42, help="generator seed")
    parser.add_argument(
        "--load",
        metavar="FILE",
        help="explore an N-Triples (.nt) or Turtle (.ttl) file instead of "
        "a synthetic dataset",
    )
    parser.add_argument(
        "--root",
        metavar="CLASS",
        help="root class for --load (default owl:Thing)",
    )
    parser.add_argument(
        "--snapshot",
        metavar="FILE",
        help="serve from a persistent mmap snapshot: an existing FILE is "
        "opened zero-copy (--load/--dataset are ignored); a missing FILE "
        "is built from them first, then served",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="dataset opening statistics")
    stats.set_defaults(func=_cmd_stats)

    chart = sub.add_parser("chart", help="render a class's chart")
    chart.add_argument("cls", help="class URI or qname (e.g. dbo:Person)")
    chart.add_argument(
        "--tab",
        choices=["subclasses", "properties", "ingoing"],
        default="subclasses",
    )
    chart.add_argument("--top", type=int, default=15)
    chart.add_argument("--threshold", type=float, default=0.2)
    chart.set_defaults(func=_cmd_chart)

    path = sub.add_parser("path", help="drill down a subclass path")
    path.add_argument("classes", nargs="+", help="subclass steps from the root")
    path.add_argument("--top", type=int, default=6)
    path.set_defaults(func=_cmd_path)

    connections = sub.add_parser(
        "connections", help="object chart for a class + property"
    )
    connections.add_argument("cls")
    connections.add_argument("prop")
    connections.add_argument("--incoming", action="store_true")
    connections.add_argument("--top", type=int, default=10)
    connections.set_defaults(func=_cmd_connections)

    search = sub.add_parser("search", help="autocomplete class names")
    search.add_argument("prefix")
    search.add_argument("--top", type=int, default=10)
    search.set_defaults(func=_cmd_search)

    sparql = sub.add_parser("sparql", help="run a SPARQL query")
    sparql.add_argument("query")
    sparql.add_argument("--top", type=int, default=25)
    sparql.set_defaults(func=_cmd_sparql)

    query = sub.add_parser(
        "query",
        help="run a SELECT through the time-sliced executor, page by page",
    )
    query.add_argument(
        "query", nargs="?", help="SPARQL query text (standard prefixes pre-declared)"
    )
    query.add_argument(
        "--quantum-ms",
        type=float,
        default=None,
        help="suspend the execution after this many milliseconds per page",
    )
    query.add_argument(
        "--page-size",
        type=int,
        default=None,
        help="suspend after this many rows per page (default 100 when "
        "no quantum is given)",
    )
    query.add_argument("--top", type=int, default=25)
    query.add_argument(
        "--explain",
        action="store_true",
        help="show the physical operator tree instead of rows",
    )
    query.add_argument(
        "--analyze",
        action="store_true",
        help="with --explain: execute and report per-operator rows/time",
    )
    query.add_argument(
        "--self-test",
        action="store_true",
        help="run the executor smoke test (used by scripts/ci.sh)",
    )
    query.set_defaults(func=_cmd_query)

    fig4 = sub.add_parser("fig4", help="regenerate the Fig. 4 table")
    fig4.set_defaults(func=_cmd_fig4)

    serve = sub.add_parser(
        "serve",
        help="drive N concurrent exploration sessions through the "
        "serving frontend, with fault injection on the simulated wire",
    )
    serve.add_argument(
        "--sessions", type=int, default=8, help="concurrent sessions to drive"
    )
    serve.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="probability a backend request fails with a retryable 503",
    )
    serve.add_argument(
        "--slow-rate",
        type=float,
        default=0.0,
        help="probability a backend response pays an extra latency penalty",
    )
    serve.add_argument(
        "--max-active",
        type=int,
        default=8,
        help="admission control: sessions sharing the rotation at once",
    )
    serve.add_argument(
        "--page-size",
        type=int,
        default=50,
        help="rows per page per session turn",
    )
    serve.add_argument(
        "--max-retries",
        type=int,
        default=25,
        help="retry budget per request before a session fails",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="serve quanta on N forked worker processes sharing one "
        "mmap snapshot (0 = in-process)",
    )
    serve.add_argument(
        "--loadgen",
        type=int,
        default=0,
        metavar="N",
        help="replace the fixed closed-loop workload with N open-loop "
        "Zipf-mixed session arrivals",
    )
    serve.add_argument(
        "--arrival-rate",
        type=float,
        default=200.0,
        help="mean --loadgen arrival rate, sessions per simulated second",
    )
    serve.add_argument(
        "--self-test",
        action="store_true",
        help="run the serving-layer smoke test (used by scripts/ci.sh); "
        "with --workers, the worker-pool smoke test",
    )
    serve.set_defaults(func=_cmd_serve)

    explain = sub.add_parser(
        "explain", help="EXPLAIN / EXPLAIN ANALYZE a SPARQL query"
    )
    explain.add_argument(
        "query", nargs="?", help="SPARQL query text (standard prefixes pre-declared)"
    )
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="execute the query and report actual rows and wall time",
    )
    explain.add_argument(
        "--optimize",
        action="store_true",
        help="run the algebra optimizer and show the plan before and "
        "after, with per-pass annotations",
    )
    explain.add_argument(
        "--json", action="store_true", help="emit the plan (and spans) as JSON"
    )
    explain.add_argument(
        "--chart",
        metavar="CLASS",
        help="explain the property-expansion chart query for CLASS "
        "instead of an explicit query",
    )
    explain.add_argument(
        "--tab",
        choices=["properties", "ingoing"],
        default="properties",
        help="chart direction for --chart",
    )
    explain.add_argument(
        "--self-test",
        action="store_true",
        help="run the observability smoke test (used by scripts/ci.sh)",
    )
    explain.set_defaults(func=_cmd_explain)

    snapshot = sub.add_parser(
        "snapshot",
        help="build or inspect a persistent mmap snapshot "
        "(docs/SNAPSHOT_FORMAT.md)",
    )
    snapshot.add_argument(
        "action",
        nargs="?",
        choices=["build", "info"],
        help="build: serialize --load/--dataset to FILE; info: dump a "
        "snapshot's header and section table",
    )
    snapshot.add_argument("file", nargs="?", help="snapshot file path")
    snapshot.add_argument(
        "--self-test",
        action="store_true",
        help="run the snapshot smoke test (used by scripts/ci.sh)",
    )
    snapshot.set_defaults(func=_cmd_snapshot)

    metrics = sub.add_parser(
        "metrics", help="dump the metrics registry (Prometheus text format)"
    )
    metrics.add_argument(
        "--exercise",
        action="store_true",
        help="run a small workload through every layer first",
    )
    metrics.set_defaults(func=_cmd_metrics)

    views = sub.add_parser(
        "views",
        help="materialized chart views: table summary or CI self-test",
    )
    views.add_argument(
        "--self-test",
        action="store_true",
        help="verify view answers against the backend and delta "
        "maintenance against a rebuild",
    )
    views.set_defaults(func=_cmd_views)

    demo = sub.add_parser(
        "demo", help="the Section 5 demonstration walkthrough"
    )
    demo.set_defaults(func=_cmd_demo)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
