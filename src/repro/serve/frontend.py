"""Multi-session serving frontend over the time-sliced executor.

:class:`ServeFrontend` is the piece that turns the engine's machinery —
suspendable plans, continuation tokens, the fair
:class:`~repro.sparql.executor.RoundRobinScheduler` — into a serving
stack: N concurrent exploration *sessions* (each a sequence of queries,
one exploration click per query) are admitted under a capacity limit,
multiplexed one bounded quantum at a time, retried with exponential
backoff on transient wire faults, restarted on expired continuation
tokens, and degraded along the eLinda fallback ladder (HVS →
decomposer → backend) when the backend circuit breaker is open.

Every session is driven through the endpoint's *public* query
interface — the same ``query(text, quantum_ms=, page_size=,
continuation=)`` protocol the explorer uses — so faults injected on the
simulated wire, HVS hits, and decomposer rewrites all take their
production paths.  Waits (backoff, breaker recovery) advance the shared
:class:`~repro.endpoint.clock.SimClock` instead of sleeping: a run is
deterministic, instant, and yet reports honest simulated latencies.

Admission control is two-staged: at most ``max_active`` sessions share
the scheduler rotation; up to ``queue_capacity`` more wait in FIFO
order; beyond that, sessions are *rejected* at submit time — load
shedding at the door instead of collapse under overload.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..endpoint.base import Endpoint
from ..endpoint.clock import SimClock
from ..endpoint.wire import TransientWireError
from ..obs.metrics import REGISTRY
from ..sparql.executor import ContinuationError, Page, RoundRobinScheduler
from .breaker import CircuitOpenError
from .retry import BackoffPolicy, RetryBudgetExceeded

__all__ = ["ServeConfig", "SessionReport", "ServeFrontend"]

_SESSIONS_TOTAL = REGISTRY.counter(
    "repro_serve_sessions_total",
    "Sessions handled by the serving frontend, by outcome",
    labelnames=("outcome",),
)
_ACTIVE_SESSIONS = REGISTRY.gauge(
    "repro_serve_active_sessions",
    "Sessions currently holding a slot in the scheduler rotation",
)
_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_serve_queue_depth",
    "Admitted-but-not-yet-active sessions waiting in the FIFO queue",
)
_SESSION_LATENCY_MS = REGISTRY.histogram(
    "repro_serve_session_latency_ms",
    "Per-session billed latency (own pages + own backoff waits, "
    "simulated ms) for completed sessions",
)
_TURNS_TOTAL = REGISTRY.counter(
    "repro_serve_turns_total",
    "Scheduler turns taken by sessions, by what the turn did",
    labelnames=("result",),
)
_TURN_PAGE = _TURNS_TOTAL.labels(result="page")
_TURN_RETRY = _TURNS_TOTAL.labels(result="retry")
_TURN_WAIT = _TURNS_TOTAL.labels(result="wait")


@dataclass(frozen=True)
class ServeConfig:
    """Serving-policy knobs for one :class:`ServeFrontend`.

    ``deadline_ms`` is a per-session budget on the shared simulated
    clock, measured from admission (not from submit): a session that
    cannot finish inside it fails with ``deadline exceeded`` instead of
    holding its slot forever.
    """

    max_active: int = 8
    queue_capacity: int = 64
    page_size: Optional[int] = 50
    quantum_ms: Optional[float] = None
    deadline_ms: Optional[float] = None
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    seed: int = 0

    def __post_init__(self):
        if self.max_active < 1:
            raise ValueError("max_active must be at least 1")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity cannot be negative")


@dataclass
class SessionReport:
    """The lifecycle record of one session, returned by :meth:`run`."""

    key: object
    outcome: str  # "completed" | "failed" | "rejected"
    error: Optional[str] = None
    #: Result rows per query, in submission order (empty when rejected).
    rows: List[List[dict]] = field(default_factory=list)
    pages: int = 0
    retries: int = 0
    queued_at_ms: float = 0.0
    admitted_at_ms: float = 0.0
    finished_at_ms: float = 0.0
    #: Billed service latency: simulated ms of the session's own pages
    #: plus its own backoff waits (independent of co-tenant load).
    billed_ms: float = 0.0

    @property
    def wall_ms(self) -> float:
        """Shared-clock latency from admission to completion."""
        return self.finished_at_ms - self.admitted_at_ms


class _SessionTask:
    """One live session inside the scheduler rotation.

    Exposes the ``run_quantum`` protocol the scheduler drives, and
    delegates the actual turn to the frontend (which owns policy).
    """

    __slots__ = (
        "key", "queries", "index", "rows", "continuation", "attempts",
        "retries", "pages", "billed_ms", "wake_ms", "queued_at_ms",
        "admitted_at_ms", "_frontend",
    )

    def __init__(self, frontend: "ServeFrontend", key, queries: List[str]):
        self.key = key
        self.queries = queries
        self.index = 0
        self.rows: List[List[dict]] = [[] for _ in queries]
        self.continuation: Optional[str] = None
        self.attempts = 0  # retries against the *current* request
        self.retries = 0
        self.pages = 0
        self.billed_ms = 0.0
        self.wake_ms = 0.0
        self.queued_at_ms = 0.0
        self.admitted_at_ms = 0.0
        self._frontend = frontend

    # RoundRobinScheduler task protocol -------------------------------
    def run_quantum(
        self,
        quantum_ms: Optional[float] = None,
        page_size: Optional[int] = None,
    ) -> Page:
        return self._frontend._turn(self, quantum_ms, page_size)

    def reset_current_query(self) -> None:
        """Restart the in-flight query from scratch (expired token)."""
        self.rows[self.index] = []
        self.continuation = None


class ServeFrontend:
    """Admission-controlled, fault-tolerant multi-session frontend."""

    def __init__(
        self,
        endpoint: Endpoint,
        clock: Optional[SimClock] = None,
        config: Optional[ServeConfig] = None,
    ):
        self.endpoint = endpoint
        self.clock = clock or getattr(endpoint, "clock", None) or SimClock()
        self.config = config or ServeConfig()
        self.scheduler = RoundRobinScheduler(
            quantum_ms=self.config.quantum_ms,
            page_size=self.config.page_size,
        )
        self._queue: Deque[_SessionTask] = deque()
        self._tasks: Dict[object, _SessionTask] = {}
        self._reports: Dict[object, SessionReport] = {}
        self._rng = random.Random(self.config.seed)
        self._progress_in_round = False
        # Open-loop arrivals: sessions submitted with a future
        # ``arrive_ms`` wait here (outside the bounded queue — they have
        # not "arrived" yet) until the simulated clock reaches them.
        self._arrivals: List[Tuple[float, int, object, List[str]]] = []
        self._arrival_serial = 0
        self._arrival_keys: set = set()

    # ------------------------------------------------------------------
    # Submission and admission
    # ------------------------------------------------------------------

    def submit(self, key, queries: Sequence[str],
               arrive_ms: Optional[float] = None) -> bool:
        """Offer a session (a sequence of queries) to the frontend.

        Returns True when the session was queued; False when admission
        control shed it (queue full) — the rejection is recorded in the
        final report map either way.

        ``arrive_ms`` schedules an *open-loop* arrival: the session
        joins the admission queue only when the simulated clock reaches
        that instant, so a load generator can pre-register a whole
        arrival process and let :meth:`run` play it out.  Capacity is
        checked at arrival time (load shedding happens at the door, not
        at registration), so a future arrival always returns True here.
        """
        if (
            key in self._tasks
            or key in self._reports
            or key in self._arrival_keys
        ):
            raise ValueError(f"session {key!r} was already submitted")
        if not queries:
            raise ValueError("a session needs at least one query")
        if arrive_ms is not None and arrive_ms > self.clock.now_ms:
            heapq.heappush(
                self._arrivals,
                (float(arrive_ms), self._arrival_serial, key, list(queries)),
            )
            self._arrival_serial += 1
            self._arrival_keys.add(key)
            return True
        return self._enqueue(key, list(queries))

    def _enqueue(self, key, queries: List[str]) -> bool:
        """Admission-control a session that has arrived *now*."""
        if len(self._queue) >= self.config.queue_capacity:
            self._reports[key] = SessionReport(
                key=key,
                outcome="rejected",
                error="admission control: queue is full",
                queued_at_ms=self.clock.now_ms,
            )
            _SESSIONS_TOTAL.labels(outcome="rejected").inc()
            return False
        task = _SessionTask(self, key, queries)
        task.queued_at_ms = self.clock.now_ms
        self._tasks[key] = task
        self._queue.append(task)
        _QUEUE_DEPTH.set(len(self._queue))
        return True

    def _admit_arrivals(self) -> None:
        while self._arrivals and self._arrivals[0][0] <= self.clock.now_ms:
            _, _, key, queries = heapq.heappop(self._arrivals)
            self._arrival_keys.discard(key)
            self._enqueue(key, queries)

    def _admit(self) -> None:
        while self._queue and len(self.scheduler) < self.config.max_active:
            task = self._queue.popleft()
            task.admitted_at_ms = self.clock.now_ms
            self.scheduler.submit(task.key, task)
            _QUEUE_DEPTH.set(len(self._queue))
            _ACTIVE_SESSIONS.set(len(self.scheduler))

    # ------------------------------------------------------------------
    # The serving loop
    # ------------------------------------------------------------------

    def run(self) -> Dict[object, SessionReport]:
        """Drive every submitted session to an outcome; the reports.

        One iteration = one fair scheduler round (every active session
        gets one quantum).  When a whole round makes no progress —
        every active session is waiting out a backoff or the breaker's
        recovery window — the simulated clock jumps to the earliest
        wake-up (or the next open-loop arrival) instead of spinning.
        """
        self._admit_arrivals()
        self._admit()
        while len(self.scheduler) or self._queue or self._arrivals:
            if not len(self.scheduler) and not self._queue:
                # Idle until the next open-loop arrival.
                self.clock.wait_until(self._arrivals[0][0])
                self._admit_arrivals()
                self._admit()
                continue
            self._progress_in_round = False
            self._run_round()
            self._admit_arrivals()
            self._admit()
            if self._progress_in_round or not len(self.scheduler):
                continue
            wakes = [
                task.wake_ms
                for task in self._tasks.values()
                if task.key not in self._reports
                and task.wake_ms > self.clock.now_ms
            ]
            if self._arrivals:
                wakes.append(self._arrivals[0][0])
            if not wakes:
                raise RuntimeError(
                    "serving loop stalled: active sessions made no "
                    "progress and none is waiting on the clock"
                )
            self.clock.wait_until(min(wakes))
        return dict(self._reports)

    def _run_round(self) -> None:
        """One fair scheduler round.  Subclasses that execute turns on
        external workers override this to batch the round's requests
        (policy stays in :meth:`_begin_turn` / :meth:`_apply` either
        way)."""
        self.scheduler.run_round()

    def reports(self) -> Dict[object, SessionReport]:
        """The outcomes recorded so far (completed/failed/rejected)."""
        return dict(self._reports)

    # ------------------------------------------------------------------
    # One session turn
    # ------------------------------------------------------------------

    def _turn(
        self,
        task: _SessionTask,
        quantum_ms: Optional[float],
        page_size: Optional[int],
    ) -> Page:
        page, query_text = self._begin_turn(task)
        if page is not None:
            return page
        try:
            response = self.endpoint.query(
                query_text,
                quantum_ms=quantum_ms,
                page_size=page_size,
                continuation=task.continuation,
            )
        except (TransientWireError, CircuitOpenError, ContinuationError) as error:
            return self._apply(task, error=error)
        return self._apply(task, response=response)

    def _begin_turn(
        self, task: _SessionTask
    ) -> Tuple[Optional[Page], Optional[str]]:
        """Pre-attempt policy: ``(page, None)`` when the turn resolves
        without issuing work (backoff wait, deadline kill), else
        ``(None, query_text)`` — the caller executes the query and folds
        the outcome back in through :meth:`_apply`."""
        now = self.clock.now_ms
        if task.wake_ms > now:
            _TURN_WAIT.inc()
            return self._idle_page("waiting"), None
        deadline = self.config.deadline_ms
        if deadline is not None and now - task.admitted_at_ms > deadline:
            return (
                self._finish(
                    task,
                    outcome="failed",
                    error=f"deadline exceeded ({deadline:.0f} simulated ms)",
                ),
                None,
            )
        return None, task.queries[task.index]

    def _apply(
        self,
        task: _SessionTask,
        response=None,
        error: Optional[Exception] = None,
    ) -> Page:
        """Fold one attempt's outcome — a response or a typed error —
        into the session.  Shared by the in-process path and the worker
        pool (which re-raises tunnelled worker errors as ``error``), so
        retry/backoff/restart policy exists exactly once."""
        if error is not None:
            if isinstance(error, TransientWireError):
                return self._retry(task, "transient", error)
            if isinstance(error, CircuitOpenError):
                return self._retry(
                    task, "circuit_open", error,
                    min_delay_ms=error.retry_after_ms,
                )
            if isinstance(error, ContinuationError):
                # The graph moved on (or the token broke) mid-pagination:
                # the only sound recovery is restarting the query — rows
                # already collected for it are discarded, never mixed
                # with rows from a different dataset version.
                task.reset_current_query()
                return self._retry(task, "expired_token", error)
            raise error
        self._progress_in_round = True
        _TURN_PAGE.inc()
        task.attempts = 0
        task.pages += 1
        task.billed_ms += response.elapsed_ms
        page_rows = list(getattr(response.result, "rows", ()))
        task.rows[task.index].extend(page_rows)
        task.continuation = response.continuation
        if response.complete:
            task.continuation = None
            task.index += 1
            if task.index >= len(task.queries):
                return self._finish(task, outcome="completed")
        return Page(
            rows=page_rows,
            variables=list(getattr(response.result, "vars", ())),
            complete=False,
            reason="page",
        )

    def _retry(
        self,
        task: _SessionTask,
        reason: str,
        error: Exception,
        min_delay_ms: float = 0.0,
    ) -> Page:
        self._progress_in_round = True  # an attempt was made this round
        _TURN_RETRY.inc()
        try:
            delay = self.config.backoff.next_delay_ms(
                task.attempts, reason, rng=self._rng
            )
        except RetryBudgetExceeded as giveup:
            return self._finish(
                task, outcome="failed", error=f"{giveup} ({error})"
            )
        delay = max(delay, min_delay_ms)
        task.attempts += 1
        task.retries += 1
        task.wake_ms = self.clock.now_ms + delay
        task.billed_ms += delay
        return self._idle_page(reason)

    def _finish(
        self, task: _SessionTask, outcome: str, error: Optional[str] = None
    ) -> Page:
        task_report = SessionReport(
            key=task.key,
            outcome=outcome,
            error=error,
            rows=task.rows,
            pages=task.pages,
            retries=task.retries,
            queued_at_ms=task.queued_at_ms,
            admitted_at_ms=task.admitted_at_ms,
            finished_at_ms=self.clock.now_ms,
            billed_ms=task.billed_ms,
        )
        self._reports[task.key] = task_report
        _SESSIONS_TOTAL.labels(outcome=outcome).inc()
        if outcome == "completed":
            _SESSION_LATENCY_MS.observe(task.billed_ms)
        self._progress_in_round = True
        # complete=True drops the task out of the scheduler rotation
        # (the scheduler popped it before this turn, so len() is final).
        _ACTIVE_SESSIONS.set(len(self.scheduler))
        return Page(rows=[], variables=[], complete=True, reason=outcome)

    @staticmethod
    def _idle_page(reason: str) -> Page:
        return Page(rows=[], variables=[], complete=False, reason=reason)
