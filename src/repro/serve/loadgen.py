"""Open-loop load generation for the serving stack.

A *closed-loop* driver (submit N sessions, wait for all of them) lets
the system set its own pace — under overload it simply slows the
generator down and the latency numbers look fine.  An *open-loop*
generator arrives on a schedule that does not care how the system is
doing: sessions are pre-registered with Poisson (exponential
inter-arrival) timestamps on the simulated clock, and the frontend's
admission control has to shed what it cannot absorb.  That is the
honest way to measure a serving system's capacity, and it is how the
eLinda demo load is modelled here: session *scenarios* (the EDBT
Section 5 demonstration walks) are drawn Zipf-distributed — a few
exploration shapes dominate, as real traffic does.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core import Direction, MemberPattern
from ..core.queries import (
    members_query,
    property_chart_query,
    subclass_chart_query,
    subclass_closure_query,
)
from ..datasets.zipf import pick_weighted, zipf_weights
from ..obs.metrics import REGISTRY

__all__ = ["Scenario", "LoadGenerator", "demo_scenarios"]

_ARRIVALS_TOTAL = REGISTRY.counter(
    "repro_loadgen_arrivals_total",
    "Sessions scheduled by the open-loop load generator, by scenario",
    labelnames=("scenario",),
)
_INTERARRIVAL_MS = REGISTRY.histogram(
    "repro_loadgen_interarrival_ms",
    "Simulated ms between consecutive open-loop session arrivals",
)


@dataclass(frozen=True)
class Scenario:
    """One exploration shape: a named sequence of clicks (queries)."""

    name: str
    queries: Tuple[str, ...]

    def __post_init__(self):
        if not self.queries:
            raise ValueError(f"scenario {self.name!r} has no queries")


def demo_scenarios(root) -> List[Scenario]:
    """The demonstration walks as serving scenarios.

    Each mirrors one Section 5 scenario's query shape, parameterised by
    the dataset's root class: the overview charts, the drill-down
    connections path, the heavy nested aggregation, the error-detection
    member sweep, and the class-hierarchy walk (property-path closure —
    the hover box's 'subclasses in total' figure).
    """
    pattern = MemberPattern.of_type(root)
    return [
        Scenario(
            "overview",
            (
                subclass_chart_query(pattern, root),
                property_chart_query(pattern, Direction.OUTGOING),
            ),
        ),
        Scenario(
            "influence_path",
            (
                subclass_chart_query(pattern, root),
                property_chart_query(pattern, Direction.INCOMING),
            ),
        ),
        Scenario(
            "heavy_aggregation",
            (
                property_chart_query(pattern, Direction.OUTGOING),
                members_query(pattern, limit=200),
            ),
        ),
        Scenario(
            "error_detection",
            (
                members_query(pattern, limit=200),
                "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 150",
            ),
        ),
        Scenario(
            "hierarchy_walk",
            (
                subclass_closure_query(root),
                "SELECT ?c ?super WHERE { ?c "
                "<http://www.w3.org/2000/01/rdf-schema#subClassOf>* "
                "?super }",
            ),
        ),
    ]


class LoadGenerator:
    """Seeded open-loop arrival process over a scenario mix.

    ``rate_per_s`` is the mean arrival rate in sessions per simulated
    second (exponential inter-arrivals); ``exponent`` shapes the Zipf
    weights over ``scenarios`` (rank 1 dominates harder as it grows).
    Deterministic for a given seed — benchmark runs are replayable.
    """

    def __init__(
        self,
        scenarios: Sequence[Scenario],
        rate_per_s: float = 100.0,
        seed: int = 0,
        exponent: float = 1.0,
    ):
        if not scenarios:
            raise ValueError("at least one scenario is required")
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        self.scenarios = list(scenarios)
        self.rate_per_s = rate_per_s
        self.exponent = exponent
        self._rng = random.Random(seed)
        self._weights = zipf_weights(len(self.scenarios), exponent)
        self._serial = 0

    def draw(self, count: int, start_ms: float = 0.0):
        """``count`` arrivals: yields ``(key, queries, arrive_ms,
        scenario_name)`` in arrival order."""
        mean_gap_ms = 1000.0 / self.rate_per_s
        at_ms = start_ms
        for _ in range(count):
            gap = -math.log(1.0 - self._rng.random()) * mean_gap_ms
            at_ms += gap
            _INTERARRIVAL_MS.observe(gap)
            scenario = pick_weighted(
                self._rng, self.scenarios, self._weights
            )
            _ARRIVALS_TOTAL.labels(scenario=scenario.name).inc()
            key = f"{scenario.name}-{self._serial}"
            self._serial += 1
            yield key, list(scenario.queries), at_ms, scenario.name

    def schedule(
        self, frontend, count: int, start_ms: Optional[float] = None
    ) -> List[str]:
        """Pre-register ``count`` open-loop arrivals on ``frontend``.

        Returns the session keys in arrival order.  The frontend plays
        the arrival process out on its simulated clock during
        :meth:`~repro.serve.frontend.ServeFrontend.run`; admission
        control applies at each session's arrival instant.
        """
        if start_ms is None:
            start_ms = frontend.clock.now_ms
        keys: List[str] = []
        for key, queries, at_ms, _ in self.draw(count, start_ms=start_ms):
            frontend.submit(key, queries, arrive_ms=at_ms)
            keys.append(key)
        return keys
