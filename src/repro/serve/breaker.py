"""Circuit breaker on the remote backend, on simulated time.

Retry alone amplifies load during an outage: every session hammers a
backend that is already failing.  The breaker watches consecutive
transient failures and, past a threshold, *opens* — requests
short-circuit without touching the backend.  The eLinda router
(:class:`~repro.perf.router.ElindaEndpoint`) then degrades along the
paper's own fallback ladder: queries the HVS has cached or the
decomposer can rewrite are still answered; only queries that genuinely
need the backend raise :class:`CircuitOpenError` for the frontend to
back off on.  After ``recovery_ms`` the breaker lets a bounded number
of *half-open* trial requests through; one success closes it again,
one failure re-opens it.

States follow the classic pattern (closed → open → half-open → closed),
timed on the shared :class:`~repro.endpoint.clock.SimClock`.
"""

from __future__ import annotations

from typing import Optional

from ..endpoint.clock import SimClock
from ..obs.metrics import REGISTRY

__all__ = ["CircuitBreaker", "CircuitOpenError", "CLOSED", "OPEN", "HALF_OPEN"]

_BREAKER_TRANSITIONS_TOTAL = REGISTRY.counter(
    "repro_breaker_transitions_total",
    "Circuit-breaker state transitions, by state entered",
    labelnames=("state",),
)
_BREAKER_SHORT_CIRCUITS_TOTAL = REGISTRY.counter(
    "repro_breaker_short_circuits_total",
    "Backend requests short-circuited because the breaker was open",
)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpenError(RuntimeError):
    """The backend breaker is open and no fallback layer could answer."""

    def __init__(self, message: str, retry_after_ms: float = 0.0):
        super().__init__(message)
        #: Simulated milliseconds until the breaker will try half-open.
        self.retry_after_ms = retry_after_ms


class CircuitBreaker:
    """Consecutive-failure breaker over a (simulated) backend.

    ``record_failure`` counts *transient* backend failures only; a
    semantic error (bad query) says nothing about backend health and
    must not be fed in.  The caller brackets each backend request with
    :meth:`allow` / :meth:`record_success` / :meth:`record_failure`.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        failure_threshold: int = 5,
        recovery_ms: float = 1000.0,
        half_open_trials: int = 1,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if recovery_ms <= 0:
            raise ValueError("recovery_ms must be positive")
        if half_open_trials < 1:
            raise ValueError("half_open_trials must be at least 1")
        self.clock = clock or SimClock()
        self.failure_threshold = failure_threshold
        self.recovery_ms = recovery_ms
        self.half_open_trials = half_open_trials
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at_ms = 0.0
        self._trials_in_flight = 0

    @property
    def state(self) -> str:
        """Current state, accounting for recovery-timeout expiry."""
        if self._state == OPEN and self._recovery_elapsed():
            self._enter(HALF_OPEN)
        return self._state

    def _recovery_elapsed(self) -> bool:
        return self.clock.now_ms - self._opened_at_ms >= self.recovery_ms

    def _enter(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        _BREAKER_TRANSITIONS_TOTAL.labels(state=state).inc()
        if state == OPEN:
            self._opened_at_ms = self.clock.now_ms
        if state == HALF_OPEN:
            self._trials_in_flight = 0
        if state == CLOSED:
            self._consecutive_failures = 0

    def allow(self) -> bool:
        """May the next backend request proceed?

        In half-open, at most ``half_open_trials`` probes pass until
        one of them reports back.  Denials are counted as
        short-circuits.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and self._trials_in_flight < self.half_open_trials:
            self._trials_in_flight += 1
            return True
        _BREAKER_SHORT_CIRCUITS_TOTAL.inc()
        return False

    def retry_after_ms(self) -> float:
        """Simulated ms until an open breaker will admit a probe."""
        if self.state != OPEN:
            return 0.0
        return max(
            0.0, self._opened_at_ms + self.recovery_ms - self.clock.now_ms
        )

    def record_success(self) -> None:
        """A backend request completed: close (or stay closed)."""
        if self._state == HALF_OPEN:
            self._trials_in_flight = max(0, self._trials_in_flight - 1)
        self._consecutive_failures = 0
        self._enter(CLOSED)

    def record_failure(self) -> None:
        """A backend request failed transiently: count, maybe open."""
        if self._state == HALF_OPEN:
            self._trials_in_flight = max(0, self._trials_in_flight - 1)
            self._enter(OPEN)
            return
        self._consecutive_failures += 1
        if self._state == CLOSED and (
            self._consecutive_failures >= self.failure_threshold
        ):
            self._enter(OPEN)
