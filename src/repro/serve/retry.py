"""Retry policy: exponential backoff with jitter, on simulated time.

Transient wire errors (:class:`~repro.endpoint.wire.TransientWireError`)
and expired continuation tokens are *retryable*: replaying the request
(or restarting the query, for expired tokens) is safe because the
failed attempt never produced an answer.  The frontend spaces retries
with this policy; delays advance the session's :class:`SimClock` rather
than sleeping, so tests and benches stay deterministic and instant.

Jitter decorrelates the retry storms that synchronised exponential
backoff produces when many sessions fail on the same backend hiccup:
each delay is scattered uniformly within ``±jitter`` of the exponential
schedule by a caller-seeded RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..obs.metrics import REGISTRY

__all__ = ["BackoffPolicy", "RetryBudgetExceeded"]

_RETRY_ATTEMPTS_TOTAL = REGISTRY.counter(
    "repro_retry_attempts_total",
    "Retries scheduled by the serving layer, by what failed",
    labelnames=("reason",),
)
_RETRY_BACKOFF_MS_TOTAL = REGISTRY.counter(
    "repro_retry_backoff_ms_total",
    "Total simulated milliseconds sessions spent waiting in backoff",
)
_RETRY_GIVEUPS_TOTAL = REGISTRY.counter(
    "repro_retry_giveups_total",
    "Requests abandoned after exhausting the retry budget",
)


class RetryBudgetExceeded(RuntimeError):
    """The retry budget for one request ran out; the session fails."""


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff schedule with bounded jitter.

    Attempt ``k`` (0-based) waits ``base_ms * multiplier**k`` capped at
    ``max_ms``, scattered uniformly within ``±jitter`` (a fraction) when
    an RNG is supplied.  ``max_retries`` bounds attempts per request.
    """

    base_ms: float = 25.0
    multiplier: float = 2.0
    max_ms: float = 1600.0
    jitter: float = 0.2
    max_retries: int = 12

    def __post_init__(self):
        if self.base_ms <= 0 or self.multiplier < 1 or self.max_ms < self.base_ms:
            raise ValueError("backoff schedule must grow from a positive base")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be a fraction in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")

    def delay_ms(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """The wait before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt is 0-based")
        raw = min(self.base_ms * self.multiplier**attempt, self.max_ms)
        if rng is not None and self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw

    def next_delay_ms(
        self, attempt: int, reason: str, rng: Optional[random.Random] = None
    ) -> float:
        """Account one scheduled retry and return its delay.

        Raises :class:`RetryBudgetExceeded` when ``attempt`` (0-based)
        is past the budget; emits the retry/backoff/giveup metrics.
        """
        if attempt >= self.max_retries:
            _RETRY_GIVEUPS_TOTAL.inc()
            raise RetryBudgetExceeded(
                f"request still failing ({reason}) after "
                f"{self.max_retries} retries"
            )
        delay = self.delay_ms(attempt, rng)
        _RETRY_ATTEMPTS_TOTAL.labels(reason=reason).inc()
        _RETRY_BACKOFF_MS_TOTAL.inc(delay)
        return delay
