"""The serving layer: concurrent sessions over the time-sliced engine.

PR 1–3 built observability, an optimizer, and a suspendable executor;
this package is what makes them a *serving stack*.  It multiplexes many
exploration sessions fairly (admission control + the round-robin
scheduler), absorbs transient wire faults with exponential backoff and
jitter (:mod:`repro.serve.retry`), restarts queries whose continuation
tokens expire, and sheds load from a failing backend through a circuit
breaker (:mod:`repro.serve.breaker`) that degrades along the paper's
own fallback ladder — HVS hit → decomposer → backend — instead of
failing sessions.

PR 7 takes the stack multi-process: :mod:`repro.serve.pool` forks
workers that serve quanta over the shared mmap snapshot, and
:mod:`repro.serve.loadgen` drives the whole thing with an open-loop,
Zipf-mixed arrival process.
"""

from .breaker import CircuitBreaker, CircuitOpenError
from .frontend import ServeConfig, ServeFrontend, SessionReport
from .loadgen import LoadGenerator, Scenario, demo_scenarios
from .pool import PoolFrontend, WorkerError
from .retry import BackoffPolicy, RetryBudgetExceeded

__all__ = [
    "BackoffPolicy",
    "RetryBudgetExceeded",
    "CircuitBreaker",
    "CircuitOpenError",
    "LoadGenerator",
    "PoolFrontend",
    "Scenario",
    "ServeConfig",
    "ServeFrontend",
    "SessionReport",
    "WorkerError",
    "demo_scenarios",
]
