"""Multi-process parallel serving over the shared mmap snapshot.

The PR 4 frontend multiplexes sessions on one interpreter thread, so
the GIL caps throughput no matter how many cores the box has.  This
module removes that ceiling: :class:`PoolFrontend` forks N worker
processes that each ``mmap`` the *same* snapshot file — the kernel
shares the physical pages, so N workers cost one copy of the data —
and serves every session quantum on a worker through the existing
``run_quantum`` / continuation-token protocol.

Division of labour:

- The **parent** keeps all serving *policy*: admission control,
  deadlines, retry/backoff, open-loop arrivals.  It routes each
  session's next quantum to a worker by **session affinity** (a
  consistent-hash ring over worker slots, so a session's plan cache
  stays warm on one worker) with **work stealing** when the affinity
  slot is overloaded this round.
- Each **worker** opens the snapshot with ``verify=False`` — the
  parent CRC-checked the payload once before spawning, and re-hashing
  79 MB per worker would serialise exactly the boot the mmap made
  O(1) — and executes quanta on a plain
  :class:`~repro.endpoint.local.LocalEndpoint`.

Because continuation tokens are self-contained and byte-stable across
stores (PR 5/6), any worker can resume any session's token: rebalanced
and crash-respawned sessions produce byte-identical pages, which the
tests assert.  Worker death is detected at the pipe (EOF) or by the
heartbeat; the slot is respawned and in-flight requests are re-issued
from their last token on another worker (``route="respawn_requeue"``).

Simulated-time accounting: each worker bills quanta on its own
:class:`~repro.endpoint.clock.SimClock`; the parent advances *its*
clock once per scheduler round by the **maximum** per-worker busy time
of that round — the honest cost of a round when workers run in
parallel — so wall latencies reflect N-way parallel capacity while
each session's ``billed_ms`` stays its own work only.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from collections import deque
from multiprocessing.connection import wait as mp_wait
from typing import Dict, List, Optional, Tuple

from ..endpoint.base import EndpointResponse
from ..endpoint.clock import SimClock
from ..endpoint.wire import TransientWireError
from ..obs.metrics import REGISTRY
from ..sparql.executor import (
    ExpiredTokenError,
    MalformedTokenError,
    TokenVersionError,
)
from ..sparql.results import SelectResult, term_from_json, term_to_json
from .breaker import CircuitOpenError
from .frontend import ServeConfig, ServeFrontend

__all__ = ["PoolFrontend", "WorkerError"]

_POOL_WORKERS = REGISTRY.gauge(
    "repro_pool_workers",
    "Worker processes currently alive in the serving pool",
)
_POOL_QUANTA = REGISTRY.counter(
    "repro_pool_quanta_total",
    "Quanta executed by pool workers, by worker slot",
    labelnames=("worker",),
)
_POOL_DISPATCHES = REGISTRY.counter(
    "repro_pool_dispatches_total",
    "Quantum dispatches, by routing decision",
    labelnames=("route",),
)
_DISPATCH_AFFINITY = _POOL_DISPATCHES.labels(route="affinity")
_DISPATCH_STEAL = _POOL_DISPATCHES.labels(route="steal")
_DISPATCH_REQUEUE = _POOL_DISPATCHES.labels(route="respawn_requeue")
_POOL_RESTARTS = REGISTRY.counter(
    "repro_pool_worker_restarts_total",
    "Worker processes respawned after a crash or failed health check",
)
_POOL_HEARTBEATS = REGISTRY.counter(
    "repro_pool_heartbeats_total",
    "Worker health checks, by result",
    labelnames=("result",),
)
_POOL_ROUND_BUSY_MS = REGISTRY.histogram(
    "repro_pool_round_busy_ms",
    "Per-round parallel cost: max per-worker busy simulated ms "
    "(what the parent clock advances by)",
)
_POOL_REQUEUED = REGISTRY.counter(
    "repro_pool_inflight_requeued_total",
    "In-flight quanta re-issued from their last token after the "
    "executing worker died",
)


class WorkerError(RuntimeError):
    """A pool worker failed in a way the retry ladder cannot absorb."""


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

#: Errors a worker tunnels to the parent by name, to be re-raised there
#: and folded through the frontend's one retry/restart policy path.
_TUNNELLED = {
    "TransientWireError": TransientWireError,
    "CircuitOpenError": CircuitOpenError,
    "MalformedTokenError": MalformedTokenError,
    "TokenVersionError": TokenVersionError,
    "ExpiredTokenError": ExpiredTokenError,
}


def _worker_main(conn, snapshot_path: str, worker_id: int) -> None:
    """Entry point of one pool worker (top-level: spawn-safe).

    Opens the shared snapshot (``verify=False`` — the parent already
    CRC-checked it), builds a local endpoint, and answers a strict
    request/reply protocol on ``conn``: ``quantum``, ``ping``,
    ``metrics``, ``crash`` (test hook), ``shutdown``.
    """
    from ..rdf.snapshot import open_snapshot

    graph = open_snapshot(snapshot_path, verify=False)
    from ..endpoint.local import LocalEndpoint

    endpoint = LocalEndpoint(graph, clock=SimClock())
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            op = message[0]
            if op == "quantum":
                _, query_text, continuation, quantum_ms, page_size = message
                conn.send(
                    _run_worker_quantum(
                        endpoint, query_text, continuation,
                        quantum_ms, page_size,
                    )
                )
            elif op == "ping":
                conn.send(("pong", worker_id, graph.snapshot_stale()))
            elif op == "metrics":
                conn.send(("metrics", REGISTRY.export_state()))
            elif op == "crash":
                os._exit(1)
            elif op == "shutdown":
                conn.send(("bye",))
                break
            else:  # pragma: no cover - protocol misuse
                conn.send(("fatal", f"unknown op {op!r}"))
                break
    finally:
        graph.close()
        conn.close()


def _run_worker_quantum(
    endpoint, query_text, continuation, quantum_ms, page_size
) -> Tuple:
    try:
        response = endpoint.query(
            query_text,
            quantum_ms=quantum_ms,
            page_size=page_size,
            continuation=continuation,
        )
    except tuple(_TUNNELLED.values()) as error:
        extra = {}
        if isinstance(error, CircuitOpenError):
            extra["retry_after_ms"] = error.retry_after_ms
        return ("err", type(error).__name__, str(error), extra)
    except Exception as error:  # pragma: no cover - engine bug surface
        return ("fatal", f"{type(error).__name__}: {error}")
    # Rows cross the pipe as SPARQL-JSON term blobs — the exact codec
    # the wire uses, so parent-side pages are byte-identical to pages
    # served in-process.
    rows = [
        {name: term_to_json(value) for name, value in row.items()}
        for row in response.result.rows
    ]
    return (
        "ok",
        {
            "vars": list(response.result.vars),
            "rows": rows,
            "continuation": response.continuation,
            "complete": response.complete,
            "elapsed_ms": response.elapsed_ms,
            "source": response.source,
        },
    )


# ----------------------------------------------------------------------
# Parent-side pool management
# ----------------------------------------------------------------------


def _hash_point(value: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest(), "big"
    )


class _HashRing:
    """Consistent-hash ring over worker *slots* (stable across respawn:
    a crashed worker's replacement inherits its slot, so routing never
    churns on failures)."""

    def __init__(self, slots: int, virtual_nodes: int = 64):
        self._points: List[Tuple[int, int]] = sorted(
            (_hash_point(f"slot-{slot}:vnode-{vnode}"), slot)
            for slot in range(slots)
            for vnode in range(virtual_nodes)
        )

    def slot_for(self, key: str) -> int:
        point = _hash_point(key)
        lo, hi = 0, len(self._points)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._points[mid][0] < point:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(self._points):
            lo = 0
        return self._points[lo][1]


class _Worker:
    """One slot's live process + control pipe, with restart bookkeeping."""

    __slots__ = ("slot", "process", "conn", "epoch", "quanta", "prev_metrics")

    def __init__(self, slot: int):
        self.slot = slot
        self.process = None
        self.conn = None
        self.epoch = 0
        self.quanta = _POOL_QUANTA.labels(worker=str(slot))
        self.prev_metrics: Optional[Dict] = None


class PoolFrontend(ServeFrontend):
    """A :class:`ServeFrontend` whose quanta execute on forked workers.

    All policy hooks (``_begin_turn`` / ``_apply``) are inherited — this
    class only overrides *where* a turn executes (``_run_round``) and
    adds worker lifecycle management.  Use as a context manager or call
    :meth:`close`; workers are daemonic either way.
    """

    def __init__(
        self,
        snapshot_path: str,
        workers: int = 2,
        clock: Optional[SimClock] = None,
        config: Optional[ServeConfig] = None,
        steal_threshold: int = 4,
        heartbeat_every: int = 16,
        verify: bool = True,
    ):
        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        super().__init__(
            endpoint=None, clock=clock or SimClock(), config=config
        )
        self.snapshot_path = snapshot_path
        self.steal_threshold = steal_threshold
        self.heartbeat_every = heartbeat_every
        if verify:
            # Verify the CRC exactly once, in the parent; workers then
            # open with verify=False and share the already-validated
            # pages.
            from ..rdf.snapshot import open_snapshot

            open_snapshot(snapshot_path, verify=True).close()
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix fallback
            self._ctx = multiprocessing.get_context("spawn")
        self._workers = [_Worker(slot) for slot in range(workers)]
        self._ring = _HashRing(workers)
        self._rounds = 0
        self._closed = False
        #: EWMA of observed quantum cost keyed by (query text, is the
        #: session's first quantum of that query) — the balancer's cost
        #: model.  First quanta of blocking plans (charts) bill orders
        #: of magnitude more than continuation quanta, so the two
        #: populations are tracked separately.
        self._quantum_cost: Dict[Tuple[str, bool], float] = {}
        for worker in self._workers:
            self._spawn(worker, restart=False)
        _POOL_WORKERS.set(self.alive_count())

    # -- lifecycle ------------------------------------------------------

    def _spawn(self, worker: _Worker, restart: bool) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.snapshot_path, worker.slot),
            daemon=True,
            name=f"repro-pool-worker-{worker.slot}",
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.epoch += 1
        # A forked worker inherits the parent's registry values as its
        # starting point, and a respawn discards the dead predecessor's
        # baseline either way — so prime the delta baseline with the
        # fresh process's boot-time state.  collect_metrics then folds
        # in only what the worker did itself.
        worker.prev_metrics = None
        try:
            reply = self._rpc(worker, ("metrics",))
            if reply[0] == "metrics":
                worker.prev_metrics = reply[1]
        except WorkerError:  # pragma: no cover - died during boot
            pass
        if restart:
            _POOL_RESTARTS.inc()
        _POOL_WORKERS.set(self.alive_count())

    def _respawn(self, worker: _Worker) -> None:
        if worker.conn is not None:
            worker.conn.close()
        if worker.process is not None:
            worker.process.join(timeout=5)
        self._spawn(worker, restart=True)

    def alive_count(self) -> int:
        return sum(
            1
            for worker in self._workers
            if worker.process is not None and worker.process.is_alive()
        )

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("shutdown",))
                worker.conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            worker.conn.close()
        for worker in self._workers:
            worker.process.join(timeout=5)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5)
        _POOL_WORKERS.set(0)

    def __enter__(self) -> "PoolFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- worker RPC -----------------------------------------------------

    def _rpc(self, worker: _Worker, message: Tuple):
        """One request/reply exchange; raises WorkerError on death."""
        try:
            worker.conn.send(message)
            return worker.conn.recv()
        except (OSError, EOFError, BrokenPipeError) as error:
            raise WorkerError(
                f"worker slot {worker.slot} died mid-exchange"
            ) from error

    def crash_worker(self, slot: int) -> None:
        """Test hook: make one worker exit hard (as a real crash would)."""
        worker = self._workers[slot]
        try:
            worker.conn.send(("crash",))
        except (OSError, BrokenPipeError):
            pass
        worker.process.join(timeout=5)

    def heartbeat(self) -> Dict[int, str]:
        """Health-check every slot; dead workers are respawned.

        Returns slot -> "ok" | "stale" | "dead" (the *pre-respawn*
        state, so callers can see what the check found).
        """
        results: Dict[int, str] = {}
        for worker in self._workers:
            if not worker.process.is_alive():
                results[worker.slot] = "dead"
            else:
                try:
                    reply = self._rpc(worker, ("ping",))
                except WorkerError:
                    results[worker.slot] = "dead"
                else:
                    results[worker.slot] = (
                        "stale" if reply[2] else "ok"
                    )
            _POOL_HEARTBEATS.labels(result=results[worker.slot]).inc()
            if results[worker.slot] == "dead":
                self._respawn(worker)
        return results

    def collect_metrics(self) -> None:
        """Pull each worker's registry and fold the deltas into the
        parent's — ``repro metrics`` then reports fleet-wide numbers."""
        for worker in self._workers:
            try:
                reply = self._rpc(worker, ("metrics",))
            except WorkerError:
                self._respawn(worker)
                continue
            if reply[0] != "metrics":  # pragma: no cover - protocol skew
                continue
            state = reply[1]
            REGISTRY.merge_exported(state, worker.prev_metrics)
            worker.prev_metrics = state

    # -- routing --------------------------------------------------------

    def _route(self, key, loads: List[float], scale: float = 1.0) -> Tuple[int, str]:
        """Pick the slot for one dispatch: session affinity unless the
        affinity slot is ``steal_threshold`` quanta deeper than the
        shallowest queue this round, in which case the least-loaded slot
        steals.  ``loads`` may be quantum counts (``scale=1``) or
        predicted milliseconds with ``scale`` the typical per-quantum
        cost — the threshold is always in quanta-equivalents."""
        affinity = self._ring.slot_for(str(key))
        best = min(range(len(loads)), key=lambda slot: loads[slot])
        if loads[affinity] - loads[best] >= self.steal_threshold * scale:
            return best, "steal"
        return affinity, "affinity"

    # -- the round ------------------------------------------------------

    def _run_round(self) -> None:
        """One fair round, multiplexed: every runnable session is routed
        up front, then each worker is kept running exactly one quantum
        at a time while the parent collects whichever reply lands first
        (:func:`multiprocessing.connection.wait`).  One-in-flight per
        worker loses nothing — a worker executes serially regardless —
        and bounds what sits in each pipe, so a round's worth of large
        replies can never fill both directions of a pipe and deadlock
        the pair.  The round costs max-per-worker (parallel) instead of
        sum (serial) time."""
        self._rounds += 1
        if self.heartbeat_every and self._rounds % self.heartbeat_every == 0:
            self.heartbeat()
        entries = list(self.scheduler._sessions.items())
        quantum_ms = self.scheduler.quantum_ms
        page_size = self.scheduler.page_size
        dispatches = []
        for key, task in entries:
            page, query_text = self._begin_turn(task)
            if page is not None:
                if page.complete:
                    self.scheduler.cancel(key)
                continue
            predicted = self._quantum_cost.get(
                (query_text, task.continuation is None)
            )
            dispatches.append((key, task, query_text, predicted))
        known = sorted(
            entry[3] for entry in dispatches if entry[3] is not None
        )
        typical = known[len(known) // 2] if known else 1.0
        # Longest-predicted-first (LPT): place the expensive quanta
        # while queues are level and let the cheap ones fill the tail —
        # the round bills max-per-worker, so balance in *milliseconds*
        # is what shortens it.
        loads = [0.0] * len(self._workers)
        pending: List[deque] = [deque() for _ in self._workers]
        for key, task, query_text, predicted in sorted(
            dispatches,
            key=lambda entry: -(
                entry[3] if entry[3] is not None else typical
            ),
        ):
            cost = predicted if predicted is not None else typical
            slot, route = self._route(key, loads, typical)
            (_DISPATCH_STEAL if route == "steal" else _DISPATCH_AFFINITY).inc()
            loads[slot] += cost
            pending[slot].append((key, task, query_text, cost))
        busy = [0.0] * len(self._workers)
        outstanding: Dict[int, Tuple] = {}
        while outstanding or any(pending):
            for worker in self._workers:
                if worker.slot in outstanding:
                    continue
                queue = pending[worker.slot]
                source = worker.slot
                if not queue:
                    # Work stealing proper: a worker that drained its
                    # own queue takes the most expensive item still
                    # waiting on the most loaded peer instead of
                    # idling (queues are in descending predicted cost,
                    # so that is the victim's head).
                    source = max(
                        range(len(pending)), key=lambda s: loads[s]
                    )
                    queue = pending[source]
                    if not queue:
                        continue
                    _DISPATCH_STEAL.inc()
                key, task, query_text, cost = queue.popleft()
                loads[source] -= cost
                request = (
                    "quantum", query_text, task.continuation,
                    quantum_ms, page_size,
                )
                try:
                    worker.conn.send(request)
                except (OSError, BrokenPipeError):
                    # Crashed before it even took the request: respawn
                    # the slot and send to the fresh process (same slot
                    # — the ring stays stable).
                    self._respawn(worker)
                    worker.conn.send(request)
                outstanding[worker.slot] = (
                    key, task, query_text, worker.epoch,
                )
            by_conn = {
                worker.conn: worker
                for worker in self._workers
                if worker.slot in outstanding
            }
            for conn in mp_wait(list(by_conn)):
                worker = by_conn[conn]
                key, task, query_text, epoch = outstanding.pop(worker.slot)
                reply = self._collect(task, worker, epoch, query_text)
                page = self._fold(task, worker, reply, busy)
                if page.complete:
                    self.scheduler.cancel(key)
        round_ms = max(busy, default=0.0)
        if round_ms > 0.0:
            _POOL_ROUND_BUSY_MS.observe(round_ms)
            self.clock.advance(round_ms)

    def _collect(self, task, worker: _Worker, epoch: int, query_text: str):
        """Await one dispatched quantum, riding out worker death.

        If the worker died holding our request (or died before our
        request reached it — detectable because the slot's epoch moved
        on), the session is requeued *from its last token* on a live
        worker: the token is self-contained, so any worker resumes it
        byte-identically.
        """
        request = (
            "quantum", query_text, task.continuation,
            self.scheduler.quantum_ms, self.scheduler.page_size,
        )
        for _ in range(len(self._workers) + 1):
            if worker.epoch != epoch:
                # The process our request went to is gone; re-issue.
                _POOL_REQUEUED.inc()
                _DISPATCH_REQUEUE.inc()
                epoch = worker.epoch
                try:
                    worker.conn.send(request)
                except (OSError, BrokenPipeError):
                    self._respawn(worker)
                    continue
            try:
                return worker.conn.recv()
            except (EOFError, OSError):
                self._respawn(worker)
        raise WorkerError(
            f"worker slot {worker.slot} kept dying; giving up on "
            f"session {task.key!r}"
        )

    def _fold(self, task, worker: _Worker, reply, busy: List[float]):
        """Turn one worker reply into the session's next page via the
        shared :meth:`_apply` policy path."""
        kind = reply[0]
        if kind == "ok":
            payload = reply[1]
            worker.quanta.inc()
            busy[worker.slot] += payload["elapsed_ms"]
            cost_key = (
                task.queries[task.index], task.continuation is None,
            )
            prior = self._quantum_cost.get(cost_key)
            self._quantum_cost[cost_key] = (
                payload["elapsed_ms"]
                if prior is None
                else 0.7 * prior + 0.3 * payload["elapsed_ms"]
            )
            rows = [
                {
                    name: term_from_json(blob)
                    for name, blob in row.items()
                }
                for row in payload["rows"]
            ]
            response = EndpointResponse(
                result=SelectResult(payload["vars"], rows),
                elapsed_ms=payload["elapsed_ms"],
                source=payload["source"],
                query_text=None,
                continuation=payload["continuation"],
                complete=payload["complete"],
            )
            return self._apply(task, response=response)
        if kind == "err":
            _, name, message, extra = reply
            error_type = _TUNNELLED[name]
            if error_type is CircuitOpenError:
                error = CircuitOpenError(
                    message, retry_after_ms=extra.get("retry_after_ms", 0.0)
                )
            else:
                error = error_type(message)
            return self._apply(task, error=error)
        raise WorkerError(f"worker slot {worker.slot} failed: {reply[1]}")

    def run(self):
        """Drive every session to an outcome, then fold worker metrics
        into the parent registry."""
        try:
            return super().run()
        finally:
            if not self._closed:
                self.collect_metrics()
