"""eLinda: Explorer for Linked Data — a full reproduction.

Reproduces Mishali, Yahav, Kalinsky, Kimelfeld, *eLinda: Explorer for
Linked Data* (EDBT 2018): the formal exploration model of bar charts and
bar expansions, the pane-based exploration UI (headless), and the
responsiveness architecture (incremental evaluation, heavy-query store,
decomposer over specialised indexes) — together with every substrate the
paper runs on, built from scratch: an RDF store, a SPARQL engine, a
simulated Virtuoso HTTP/JSON endpoint, and synthetic DBpedia-like and
LinkedGeoData-like datasets.

Quickstart::

    from repro import quick_session
    session = quick_session()
    print(session.render())
"""

from . import core, datasets, endpoint, explorer, perf, rdf, sparql
from .core import (
    Bar,
    BarChart,
    BarType,
    ChartEngine,
    Direction,
    ExpansionKind,
    Exploration,
)
from .explorer import ExplorerSession, SettingsForm
from .rdf import Graph, Literal, Triple, URI

__version__ = "1.0.0"

__all__ = [
    "rdf",
    "sparql",
    "endpoint",
    "perf",
    "core",
    "explorer",
    "datasets",
    "URI",
    "Literal",
    "Triple",
    "Graph",
    "Bar",
    "BarChart",
    "BarType",
    "Direction",
    "Exploration",
    "ExpansionKind",
    "ChartEngine",
    "ExplorerSession",
    "SettingsForm",
    "quick_session",
    "__version__",
]


def quick_session(scale: float = 0.00025, seed: int = 42) -> ExplorerSession:
    """A ready-to-explore session over the synthetic DBpedia mirror.

    Builds the dataset, a simulated Virtuoso server, the full eLinda
    endpoint stack (local mirror + HVS + decomposer), and an explorer
    session with the initial pane open.
    """
    from .datasets import DBpediaConfig, generate_dbpedia
    from .endpoint import SimulatedVirtuosoServer
    from .explorer import connect

    config = DBpediaConfig(scale=scale, seed=seed)
    dataset = generate_dbpedia(config)
    settings = SettingsForm()
    server = SimulatedVirtuosoServer(dataset.graph, url=settings.endpoint_url)
    endpoint_stack = connect(settings, {settings.endpoint_url: server})
    return ExplorerSession(endpoint_stack, settings=settings)
