"""Reference implementation of the three bar expansions (Section 2).

These functions compute expansions directly over an in-memory
:class:`repro.rdf.graph.Graph`, materialising full member sets.  They are
the executable form of the paper's definitions and serve as the ground
truth that the endpoint-backed chart engine (:mod:`repro.core.engine`)
is tested against.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from ..rdf.graph import Graph
from ..rdf.terms import URI
from ..rdf.vocab import RDF, RDFS
from .model import Bar, BarChart, BarType, Direction

__all__ = [
    "ExpansionError",
    "subclass_expansion",
    "property_expansion",
    "object_expansion",
    "filter_expansion",
    "root_bar",
    "initial_chart",
]

_RDF_TYPE = RDF.term("type")
_RDFS_SUBCLASS = RDFS.term("subClassOf")


class ExpansionError(ValueError):
    """Raised when an expansion is not applicable to the given bar."""


def _require_type(bar: Bar, expected: BarType, expansion: str) -> frozenset:
    if bar.type is not expected:
        raise ExpansionError(
            f"{expansion} expansion is enabled only for bars of type "
            f"{expected.value!r}, got {bar.type.value!r}"
        )
    if bar.uris is None:
        raise ExpansionError(
            f"{expansion} expansion needs materialised bar members"
        )
    return bar.uris


def root_bar(graph: Graph, root_class: URI) -> Bar:
    """The predefined bar ``<S, tau, class>`` with ``S`` all subjects of
    ``rdf:type tau`` — the seed of the initial chart (Section 2)."""
    members = frozenset(graph.subjects(_RDF_TYPE, root_class))
    return Bar(label=root_class, type=BarType.CLASS, uris=members)


def initial_chart(graph: Graph, root_class: URI) -> BarChart:
    """``B0 = eta(B)`` with ``eta`` the subclass expansion on the root bar."""
    return subclass_expansion(graph, root_bar(graph, root_class))


def subclass_expansion(graph: Graph, bar: Bar) -> BarChart:
    """Subclass expansion (enabled when ``t = class``).

    ``labels(B)`` are all ``tau`` with ``(tau, rdfs:subClassOf, label)``
    in G; ``B[tau] = <T, tau, class>`` where ``T`` are the members of
    ``S`` of class ``tau``.
    """
    members = _require_type(bar, BarType.CLASS, "subclass")
    bars: Dict[URI, Bar] = {}
    for subclass in graph.subjects(_RDFS_SUBCLASS, bar.label):
        if not isinstance(subclass, URI):
            continue
        of_subclass = frozenset(
            s for s in graph.subjects(_RDF_TYPE, subclass) if s in members
        )
        bars[subclass] = Bar(
            label=subclass, type=BarType.CLASS, uris=of_subclass
        )
    return BarChart(bars)


def property_expansion(
    graph: Graph, bar: Bar, direction: Direction = Direction.OUTGOING
) -> BarChart:
    """Property expansion (enabled when ``t = class``).

    Outgoing: ``labels(B)`` are all ``pi`` with ``(s, pi, o)`` for some
    ``s`` in ``S``; ``B[pi]`` is the set of members featuring ``pi``.
    The incoming version uses triples ``(o, pi, s)`` — the members play
    the object role.  Coverage (Section 3.3) is ``|B[pi]| / |S|``.
    """
    members = _require_type(bar, BarType.CLASS, "property")
    by_property: Dict[URI, Set[URI]] = {}
    if direction is Direction.OUTGOING:
        for member in members:
            for prop in graph.predicates(subject=member):
                by_property.setdefault(prop, set()).add(member)
    else:
        for member in members:
            for prop in graph.predicates(object=member):
                by_property.setdefault(prop, set()).add(member)
    total = len(members)
    bars = {
        prop: Bar(
            label=prop,
            type=BarType.PROPERTY,
            uris=frozenset(featuring),
            coverage=(len(featuring) / total) if total else 0.0,
            direction=direction,
        )
        for prop, featuring in by_property.items()
    }
    return BarChart(bars)


def object_expansion(
    graph: Graph, bar: Bar, direction: Direction = Direction.OUTGOING
) -> BarChart:
    """Object expansion (enabled when ``t = property``).

    Outgoing: ``labels(B)`` are all ``tau`` such that G contains
    ``(s, label, o)`` with ``s`` in ``S`` and ``o`` of class ``tau``;
    ``B[tau]`` consists of those objects ``o`` of class ``tau``.  The
    incoming version collects the subjects ``o`` of ``(o, label, s)``.
    """
    members = _require_type(bar, BarType.PROPERTY, "object")
    connected: Set = set()
    if direction is Direction.OUTGOING:
        for member in members:
            connected.update(graph.objects(subject=member, predicate=bar.label))
    else:
        for member in members:
            connected.update(graph.subjects(predicate=bar.label, object=member))
    by_class: Dict[URI, Set[URI]] = {}
    for node in connected:
        if not isinstance(node, URI):
            continue
        for cls in graph.objects(subject=node, predicate=_RDF_TYPE):
            if isinstance(cls, URI):
                by_class.setdefault(cls, set()).add(node)
    bars = {
        cls: Bar(label=cls, type=BarType.CLASS, uris=frozenset(nodes))
        for cls, nodes in by_class.items()
    }
    return BarChart(bars)


def filter_expansion(
    bar: Bar, condition: Callable[[URI], bool], allowed: Optional[Set[URI]] = None
) -> Bar:
    """The filter operation: a new bar over ``S_f``, the members of ``S``
    satisfying ``condition`` (and contained in ``allowed`` when given).

    Opening a pane on the filtered set is the paper's *filter expansion*
    (Section 3.3): "we may ask eLinda to open a new pane that is
    associated with S_f — the set S after applying the filters".
    """
    if bar.uris is None:
        raise ExpansionError("filter expansion needs materialised bar members")
    filtered = bar.filter(condition)
    if allowed is not None:
        assert filtered.uris is not None
        filtered = filtered.with_uris(frozenset(filtered.uris) & frozenset(allowed))
    return filtered
