"""eLinda's core: the formal model (Section 2) and its query machinery.

* :mod:`repro.core.model` — bars and bar charts.
* :mod:`repro.core.expansions` — reference subclass/property/object
  expansions plus filtering, straight from the paper's definitions.
* :mod:`repro.core.queries` — SPARQL generation for every expansion.
* :mod:`repro.core.engine` — endpoint-backed chart computation.
* :mod:`repro.core.exploration` — validated exploration paths.
* :mod:`repro.core.statistics`, :mod:`repro.core.search`,
  :mod:`repro.core.datatable` — supporting services of Section 3.
"""

from .datatable import ColumnFilter, DataTable, contains_filter, equals_filter
from .engine import ChartEngine
from .expansions import (
    ExpansionError,
    filter_expansion,
    initial_chart,
    object_expansion,
    property_expansion,
    root_bar,
    subclass_expansion,
)
from .exploration import ExpansionKind, Exploration, ExplorationStep
from .model import Bar, BarChart, BarType, Direction
from .queries import (
    MemberPattern,
    count_query,
    members_query,
    object_chart_query,
    property_chart_query,
    subclass_chart_query,
)
from .search import ClassSearchEntry, ClassSearchIndex
from .statistics import ClassStatistics, DatasetStatistics, StatisticsService

__all__ = [
    "Bar",
    "BarChart",
    "BarType",
    "Direction",
    "ExpansionError",
    "subclass_expansion",
    "property_expansion",
    "object_expansion",
    "filter_expansion",
    "root_bar",
    "initial_chart",
    "ExpansionKind",
    "Exploration",
    "ExplorationStep",
    "ChartEngine",
    "MemberPattern",
    "members_query",
    "count_query",
    "subclass_chart_query",
    "property_chart_query",
    "object_chart_query",
    "ClassSearchIndex",
    "ClassSearchEntry",
    "StatisticsService",
    "DatasetStatistics",
    "ClassStatistics",
    "DataTable",
    "ColumnFilter",
    "equals_filter",
    "contains_filter",
]
