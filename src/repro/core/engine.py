"""Endpoint-backed chart computation.

Where :mod:`repro.core.expansions` computes expansions directly on an
in-memory graph, the :class:`ChartEngine` drives them the way the real
tool does — by generating SPARQL (:mod:`repro.core.queries`) and sending
it to an :class:`repro.endpoint.base.Endpoint`.  Every bar it returns
carries its :class:`repro.core.queries.MemberPattern`, so drill-downs
compose and "the SPARQL query it was generated from" is always
available to the user.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from ..endpoint.base import Endpoint
from ..rdf.terms import Literal, URI
from .model import Bar, BarChart, BarType, Direction
from .queries import (
    MemberPattern,
    count_query,
    members_query,
    object_chart_query,
    property_chart_query,
    subclass_chart_query,
)

__all__ = ["ChartEngine"]


def _as_int(term) -> int:
    """Integer value of a count literal.

    Backends are free to type their counts as xsd:decimal/xsd:double
    ("3.0", "3.0e0"); an integral float is still an exact count, so it
    is accepted rather than silently flattened to an empty bar.
    """
    if isinstance(term, Literal):
        try:
            return int(term.lexical)
        except ValueError:
            pass
        try:
            number = float(term.lexical)
        except ValueError:
            return 0
        if number == int(number):
            return int(number)
    return 0


def _supports_paging(endpoint) -> bool:
    """Whether ``endpoint.query`` accepts the continuation-paging kwargs.

    Detected from the signature (or an explicit ``supports_paging``
    attribute) instead of probing with a call and catching TypeError —
    catching would also swallow genuine TypeErrors raised *inside* the
    endpoint's evaluation.
    """
    declared = getattr(endpoint, "supports_paging", None)
    if declared is not None:
        return bool(declared)
    import inspect

    try:
        parameters = inspect.signature(endpoint.query).parameters
    except (TypeError, ValueError):
        return False
    if any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    ):
        return True
    return {"page_size", "continuation"} <= set(parameters)


class ChartEngine:
    """Builds bar charts by querying a SPARQL endpoint.

    ``page_size`` / ``quantum_ms`` turn on time-sliced fetching: every
    chart query is paged through the endpoint's continuation-token
    protocol instead of running to completion in one request, so a
    heavy property expansion never holds the engine for longer than one
    quantum at a time.  Endpoints without a paged ``query()`` (the
    router, test doubles) transparently fall back to one-shot
    execution — the chart is identical either way, paging only changes
    *when* the work happens.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        root_class: URI,
        page_size: Optional[int] = None,
        quantum_ms: Optional[float] = None,
    ):
        self.endpoint = endpoint
        self.root_class = root_class
        self.page_size = page_size
        self.quantum_ms = quantum_ms
        #: Pages fetched through the continuation protocol (observability).
        self.pages_fetched = 0
        # Paging-capability cache; resolved on first paged select.
        self._paged: Optional[bool] = None

    def _select(self, query_text: str):
        """One chart query's full result, paged when configured."""
        if self.page_size is None and self.quantum_ms is None:
            return self.endpoint.select(query_text)
        if self._paged is None:
            self._paged = _supports_paging(self.endpoint)
        if not self._paged:
            # The endpoint's query() takes no paging parameters.
            return self.endpoint.select(query_text)
        response = self.endpoint.query(
            query_text,
            page_size=self.page_size,
            quantum_ms=self.quantum_ms,
        )
        self.pages_fetched += 1
        rows = list(response.result.rows)
        variables = response.result.vars
        while not response.complete:
            response = self.endpoint.query(
                query_text,
                page_size=self.page_size,
                quantum_ms=self.quantum_ms,
                continuation=response.continuation,
            )
            self.pages_fetched += 1
            rows.extend(response.result.rows)
        from ..sparql.results import SelectResult

        return SelectResult(variables, rows)

    # ------------------------------------------------------------------
    # Roots
    # ------------------------------------------------------------------

    def root_bar(self) -> Bar:
        """The predefined root bar (all instances of the root class)."""
        pattern = MemberPattern.of_type(self.root_class)
        count = _as_int(self.endpoint.select(count_query(pattern)).scalar())
        return Bar(
            label=self.root_class,
            type=BarType.CLASS,
            count=count,
            pattern=pattern,
        )

    def initial_chart(self) -> BarChart:
        """``B0``: the subclass expansion of the root bar (Section 2)."""
        return self.subclass_chart(self.root_bar())

    # ------------------------------------------------------------------
    # Expansions
    # ------------------------------------------------------------------

    def _pattern_of(self, bar: Bar) -> MemberPattern:
        pattern = bar.pattern
        if isinstance(pattern, MemberPattern):
            return pattern
        if bar.uris is not None:
            return MemberPattern.of_values(sorted(bar.uris, key=lambda u: u.value))
        raise ValueError(
            "bar carries neither a member pattern nor materialised URIs"
        )

    def subclass_chart(self, bar: Bar) -> BarChart:
        """Subclass expansion through the endpoint."""
        if bar.type is not BarType.CLASS:
            raise ValueError("subclass expansion needs a class bar")
        pattern = self._pattern_of(bar)
        result = self._select(subclass_chart_query(pattern, bar.label))
        bars: Dict[URI, Bar] = {}
        for row in result:
            subclass = row.get("sub")
            if not isinstance(subclass, URI):
                continue
            bars[subclass] = Bar(
                label=subclass,
                type=BarType.CLASS,
                count=_as_int(row.get("count")),
                pattern=pattern.and_type(subclass),
            )
        return BarChart(bars)

    def property_chart(
        self, bar: Bar, direction: Direction = Direction.OUTGOING
    ) -> BarChart:
        """Property expansion through the endpoint (the heavy query)."""
        if bar.type is not BarType.CLASS:
            raise ValueError("property expansion needs a class bar")
        pattern = self._pattern_of(bar)
        total = bar.size if (bar.count is not None or bar.uris is not None) else 0
        if not total:
            total = _as_int(self.endpoint.select(count_query(pattern)).scalar())
        result = self._select(property_chart_query(pattern, direction))
        bars: Dict[URI, Bar] = {}
        for row in result:
            prop = row.get("p")
            if not isinstance(prop, URI):
                continue
            count = _as_int(row.get("count"))
            bars[prop] = Bar(
                label=prop,
                type=BarType.PROPERTY,
                count=count,
                coverage=(count / total) if total else 0.0,
                direction=direction,
                pattern=pattern.and_property(prop, direction),
            )
        return BarChart(bars)

    def object_chart(
        self, bar: Bar, direction: Direction = Direction.OUTGOING
    ) -> BarChart:
        """Object expansion through the endpoint (Connections tab).

        ``bar`` must be a property bar; its members are the subjects
        featuring the property, and the produced bars group the
        *connected* nodes by type.  ``direction`` must match the
        direction the property bar was created with.
        """
        if bar.type is not BarType.PROPERTY:
            raise ValueError("object expansion needs a property bar")
        pattern = self._pattern_of(bar)
        result = self._select(
            object_chart_query(pattern, bar.label, direction)
        )
        bars: Dict[URI, Bar] = {}
        for row in result:
            cls = row.get("type")
            if not isinstance(cls, URI):
                continue
            bars[cls] = Bar(
                label=cls,
                type=BarType.CLASS,
                count=_as_int(row.get("count")),
                pattern=pattern.reroot_via(
                    bar.label, direction, new_type=cls
                ),
            )
        return BarChart(bars)

    # ------------------------------------------------------------------
    # Materialisation and provenance
    # ------------------------------------------------------------------

    def materialise(self, bar: Bar, limit: Optional[int] = None) -> Bar:
        """Fetch the bar's members from the endpoint."""
        if bar.uris is not None:
            return bar
        pattern = self._pattern_of(bar)
        result = self._select(members_query(pattern, limit=limit))
        members = frozenset(
            term for term in result.column("s") if isinstance(term, URI)
        )
        return bar.with_uris(members)

    def refresh_count(self, bar: Bar) -> Bar:
        """Recompute the bar's height from the endpoint."""
        pattern = self._pattern_of(bar)
        count = _as_int(self.endpoint.select(count_query(pattern)).scalar())
        return replace(bar, count=count)

    def sparql_for(self, bar: Bar) -> str:
        """The SPARQL query extracting the bar's members — what eLinda
        shows when the user asks for the code behind a bar."""
        return members_query(self._pattern_of(bar))

    def export_bar(self, bar: Bar):
        """CONSTRUCT the subgraph of the bar's members (all their
        outgoing triples) — detailed RDF data on demand."""
        from .queries import bar_subgraph_query

        return self.endpoint.construct(bar_subgraph_query(self._pattern_of(bar)))

    def property_chart_incremental(
        self,
        bar: Bar,
        direction: Direction = Direction.OUTGOING,
        window_size: int = 2000,
        max_steps: Optional[int] = None,
    ):
        """Progressive property chart: yields a growing :class:`BarChart`
        per remote page (the paper's incremental evaluation surfaced at
        the chart level; works against any endpoint, including remote
        compatibility mode).

        The final chart's coverage values match :meth:`property_chart`
        up to page-boundary over-counts (see
        :mod:`repro.perf.remote_incremental`).
        """
        from ..perf.remote_incremental import (
            RemoteIncrementalConfig,
            RemoteIncrementalEvaluator,
        )

        if bar.type is not BarType.CLASS:
            raise ValueError("property expansion needs a class bar")
        pattern = self._pattern_of(bar)
        total = bar.size if (bar.count is not None or bar.uris is not None) else 0
        if not total:
            total = _as_int(self.endpoint.select(count_query(pattern)).scalar())
        evaluator = RemoteIncrementalEvaluator(
            self.endpoint,
            RemoteIncrementalConfig(window_size=window_size, max_steps=max_steps),
        )
        for partial in evaluator.run(pattern, direction):
            bars: Dict[URI, Bar] = {}
            for row in partial.result.rows:
                prop = row.get("p")
                if not isinstance(prop, URI):
                    continue
                count = _as_int(row.get("count"))
                bars[prop] = Bar(
                    label=prop,
                    type=BarType.PROPERTY,
                    count=count,
                    coverage=(count / total) if total else 0.0,
                    direction=direction,
                    pattern=pattern.and_property(prop, direction),
                )
            yield BarChart(bars), partial

    def filtered_bar(self, bar: Bar, values: Dict[URI, URI | Literal]) -> Bar:
        """The filter expansion: restrict a class bar to members with the
        given property values, as a new bar over ``S_f``."""
        pattern = self._pattern_of(bar)
        for prop, value in sorted(values.items(), key=lambda kv: kv[0].value):
            pattern = pattern.and_value(prop, value)
        count = _as_int(self.endpoint.select(count_query(pattern)).scalar())
        return Bar(
            label=bar.label,
            type=bar.type,
            count=count,
            pattern=pattern,
            direction=bar.direction,
        )
