"""The data table (Section 3.3, "Browse instance data" and "Data filters").

"Each bar in the property chart that is selected by the user is added as
a new column in the table. The column is then filled-in with actual
values that are fetched from the dataset. ... the table exposes the
SPARQL query it was generated from."  Column filters restrict the rows
without changing the pane's set ``S``; asking for a pane on the filtered
set is the *filter expansion* (handled by the engine/session layers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..endpoint.base import Endpoint
from ..rdf.terms import Literal, Term, URI
from .queries import MemberPattern, property_values_query

__all__ = ["ColumnFilter", "DataTable", "equals_filter", "contains_filter"]


@dataclass(frozen=True)
class ColumnFilter:
    """A predicate attached to one table column."""

    description: str
    predicate: Callable[[Optional[Term]], bool]

    def __call__(self, value: Optional[Term]) -> bool:
        return self.predicate(value)


def equals_filter(value: Term) -> ColumnFilter:
    """Keep rows whose column value equals ``value``."""
    return ColumnFilter(
        description=f"= {value.n3()}",
        predicate=lambda term: term == value,
    )


def contains_filter(text: str) -> ColumnFilter:
    """Keep rows whose column value contains ``text`` (case-insensitive)."""
    needle = text.lower()

    def predicate(term: Optional[Term]) -> bool:
        if isinstance(term, Literal):
            return needle in term.lexical.lower()
        if isinstance(term, URI):
            return needle in term.value.lower()
        return False

    return ColumnFilter(description=f"contains {text!r}", predicate=predicate)


class DataTable:
    """A tabular view over a pane's member set with property columns."""

    def __init__(self, endpoint: Endpoint, pattern: MemberPattern):
        self.endpoint = endpoint
        self.pattern = pattern
        self.columns: List[URI] = []
        self.filters: Dict[URI, ColumnFilter] = {}
        self._rows: Optional[List[Tuple[URI, Dict[URI, List[Term]]]]] = None

    # ------------------------------------------------------------------
    # Column management
    # ------------------------------------------------------------------

    def add_column(self, prop: URI) -> None:
        """Add a property bar as a new column (idempotent)."""
        if prop not in self.columns:
            self.columns.append(prop)
            self._rows = None

    def remove_column(self, prop: URI) -> None:
        """Drop a column and any filter attached to it."""
        if prop in self.columns:
            self.columns.remove(prop)
            self.filters.pop(prop, None)
            self._rows = None

    def set_filter(self, prop: URI, column_filter: ColumnFilter) -> None:
        """Attach a data filter to a column (must exist)."""
        if prop not in self.columns:
            raise KeyError(f"no such column: {prop}")
        self.filters[prop] = column_filter

    def clear_filter(self, prop: URI) -> None:
        self.filters.pop(prop, None)

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def to_sparql(self, limit: Optional[int] = None) -> str:
        """The SPARQL query the table was generated from."""
        return property_values_query(self.pattern, self.columns, limit=limit)

    def _fetch(self) -> List[Tuple[URI, Dict[URI, List[Term]]]]:
        if self._rows is not None:
            return self._rows
        result = self.endpoint.select(self.to_sparql())
        grouped: Dict[URI, Dict[URI, List[Term]]] = {}
        order: List[URI] = []
        for row in result:
            subject = row.get("s")
            if not isinstance(subject, URI):
                continue
            if subject not in grouped:
                grouped[subject] = {prop: [] for prop in self.columns}
                order.append(subject)
            for index, prop in enumerate(self.columns):
                value = row.get(f"col{index}")
                if value is not None and value not in grouped[subject][prop]:
                    grouped[subject][prop].append(value)
        self._rows = [(subject, grouped[subject]) for subject in order]
        return self._rows

    def rows(
        self, apply_filters: bool = True
    ) -> List[Tuple[URI, Dict[URI, List[Term]]]]:
        """(subject, {property: values}) rows, filtered by default.

        A row passes a column filter when *any* of its values for that
        column satisfies the predicate.
        """
        fetched = self._fetch()
        if not apply_filters or not self.filters:
            return list(fetched)
        kept = []
        for subject, values in fetched:
            ok = True
            for prop, column_filter in self.filters.items():
                cell = values.get(prop, [])
                if cell:
                    if not any(column_filter(value) for value in cell):
                        ok = False
                        break
                elif not column_filter(None):
                    ok = False
                    break
            if ok:
                kept.append((subject, values))
        return kept

    def filtered_members(self) -> frozenset:
        """``S_f`` — the members surviving the filters; feeding this to a
        new pane is the filter expansion."""
        return frozenset(subject for subject, _values in self.rows())

    def filtered_pattern(self) -> MemberPattern:
        """A member pattern for ``S_f`` (explicit VALUES set)."""
        return MemberPattern.of_values(sorted(self.filtered_members(), key=lambda u: u.value))

    def invalidate(self) -> None:
        """Drop the cached rows (e.g. after a dataset update)."""
        self._rows = None

    def render(self, max_rows: int = 20) -> str:
        """Plain-text rendering of the (filtered) table."""
        headers = ["instance"] + [prop.local_name for prop in self.columns]
        lines: List[List[str]] = []
        rows = self.rows()
        for subject, values in rows[:max_rows]:
            line = [subject.local_name]
            for prop in self.columns:
                cell = values.get(prop, [])
                line.append(
                    ", ".join(
                        value.local_name
                        if isinstance(value, URI)
                        else str(value)
                        for value in cell
                    )
                )
            lines.append(line)
        widths = [len(header) for header in headers]
        for line in lines:
            for index, cell in enumerate(line):
                widths[index] = max(widths[index], len(cell))
        out = [
            " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "-+-".join("-" * width for width in widths),
        ]
        for line in lines:
            out.append(
                " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line))
            )
        if len(rows) > max_rows:
            out.append(f"... ({len(rows) - max_rows} more rows)")
        return "\n".join(out)
