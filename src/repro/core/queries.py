"""SPARQL generation for expansions and exploration steps.

"User requests are translated into numerous SPARQL queries that are sent
to the server in real time" (Section 3.1), and "eLinda enables the user
to generate SPARQL code to extract each of the bars along the
exploration" (Section 2).  This module is that translation layer.

The central abstraction is :class:`MemberPattern` — a composable SPARQL
group graph pattern whose ``{S}`` placeholder denotes the members of a
bar's set ``S``.  Every expansion along an exploration path refines or
re-roots the pattern, so the full provenance of any bar is always
expressible as a single query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from ..rdf.terms import Literal, URI
from ..rdf.vocab import OWL, RDF, RDFS
from .model import Direction

__all__ = [
    "MemberPattern",
    "members_query",
    "count_query",
    "bar_subgraph_query",
    "subclass_chart_query",
    "property_chart_query",
    "object_chart_query",
    "class_instance_count_query",
    "total_triples_query",
    "class_count_query",
    "class_list_query",
    "subclass_counts_query",
    "subclass_closure_query",
    "labels_query",
    "property_values_query",
]

_RDF_TYPE = RDF.term("type")


@dataclass(frozen=True)
class MemberPattern:
    """A SPARQL pattern over the member variable ``{S}``.

    ``lines`` are triple-pattern lines containing the literal placeholder
    ``{S}``; auxiliary variables are uniquely numbered via ``next_id`` so
    compositions never capture each other's variables.
    """

    lines: Tuple[str, ...]
    next_id: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def of_type(cls: URI) -> "MemberPattern":
        """Members are the instances of ``cls``: ``{S} rdf:type <cls>``."""
        return MemberPattern((f"{{S}} {_RDF_TYPE.n3()} {cls.n3()} .",), 0)

    @staticmethod
    def of_values(uris: Iterable[URI]) -> "MemberPattern":
        """Members are an explicit URI set (filter expansion on a
        materialised ``S_f``)."""
        ordered = sorted(uris, key=lambda uri: uri.value)
        values = " ".join(uri.n3() for uri in ordered)
        return MemberPattern((f"VALUES {{S}} {{ {values} }}",), 0)

    # ------------------------------------------------------------------
    # Refinement (same member variable)
    # ------------------------------------------------------------------

    def and_type(self, cls: URI) -> "MemberPattern":
        """Members additionally of class ``cls`` (subclass-expansion bar)."""
        return MemberPattern(
            self.lines + (f"{{S}} {_RDF_TYPE.n3()} {cls.n3()} .",), self.next_id
        )

    def and_property(
        self, prop: URI, direction: Direction = Direction.OUTGOING
    ) -> "MemberPattern":
        """Members additionally featuring ``prop`` (property-expansion bar)."""
        var = f"?v{self.next_id}"
        if direction is Direction.OUTGOING:
            line = f"{{S}} {prop.n3()} {var} ."
        else:
            line = f"{var} {prop.n3()} {{S}} ."
        return MemberPattern(self.lines + (line,), self.next_id + 1)

    def and_value(
        self,
        prop: URI,
        value: URI | Literal,
        direction: Direction = Direction.OUTGOING,
    ) -> "MemberPattern":
        """Members with a specific value for ``prop`` (data filter)."""
        if direction is Direction.OUTGOING:
            line = f"{{S}} {prop.n3()} {value.n3()} ."
        else:
            line = f"{value.n3()} {prop.n3()} {{S}} ."
        return MemberPattern(self.lines + (line,), self.next_id)

    # ------------------------------------------------------------------
    # Re-rooting (object expansion switches the member set)
    # ------------------------------------------------------------------

    def reroot_via(
        self,
        prop: URI,
        direction: Direction = Direction.OUTGOING,
        new_type: Optional[URI] = None,
    ) -> "MemberPattern":
        """Members become the nodes connected to the old members via
        ``prop`` — the object expansion's switch "from S to O_sp"
        (Section 3.4).  Outgoing: old members are subjects; incoming:
        old members are objects."""
        old_var = f"?m{self.next_id}"
        renamed = tuple(line.replace("{S}", old_var) for line in self.lines)
        if direction is Direction.OUTGOING:
            link = f"{old_var} {prop.n3()} {{S}} ."
        else:
            link = f"{{S}} {prop.n3()} {old_var} ."
        lines = renamed + (link,)
        if new_type is not None:
            lines = lines + (f"{{S}} {_RDF_TYPE.n3()} {new_type.n3()} .",)
        return MemberPattern(lines, self.next_id + 1)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, member_var: str = "?s", indent: str = "  ") -> str:
        """The pattern text with ``{S}`` bound to ``member_var``."""
        return "\n".join(
            f"{indent}{line.replace('{S}', member_var)}" for line in self.lines
        )

    def __str__(self) -> str:
        return self.render()


# ----------------------------------------------------------------------
# Per-bar queries
# ----------------------------------------------------------------------


def members_query(pattern: MemberPattern, limit: Optional[int] = None) -> str:
    """SELECT the distinct members of a bar — the query eLinda exposes
    for "retriev[ing] the corresponding data"."""
    suffix = f"\nLIMIT {limit}" if limit is not None else ""
    return f"SELECT DISTINCT ?s WHERE {{\n{pattern.render()}\n}}{suffix}"


def count_query(pattern: MemberPattern) -> str:
    """COUNT the distinct members of a bar (its height)."""
    return (
        "SELECT (COUNT(DISTINCT ?s) AS ?count) WHERE {\n"
        f"{pattern.render()}\n}}"
    )


def bar_subgraph_query(pattern: MemberPattern) -> str:
    """CONSTRUCT the subgraph of all outgoing triples of a bar's members
    — eLinda's "looking into detailed RDF data" export (Section 1)."""
    return (
        "CONSTRUCT { ?s ?p ?o } WHERE {\n"
        f"{pattern.render()}\n"
        "  ?s ?p ?o .\n}"
    )


# ----------------------------------------------------------------------
# Chart queries (one per expansion)
# ----------------------------------------------------------------------


def subclass_chart_query(pattern: MemberPattern, parent: URI) -> str:
    """The subclass-expansion chart: per-subclass member counts."""
    subclass = RDFS.term("subClassOf")
    return (
        "SELECT ?sub (COUNT(DISTINCT ?s) AS ?count) WHERE {\n"
        f"  ?sub {subclass.n3()} {parent.n3()} .\n"
        "  OPTIONAL {\n"
        f"{pattern.render(indent='    ')}\n"
        f"    ?s {_RDF_TYPE.n3()} ?sub .\n"
        "  }\n"
        "}\nGROUP BY ?sub\nORDER BY DESC(?count)"
    )


def property_chart_query(
    pattern: MemberPattern, direction: Direction = Direction.OUTGOING
) -> str:
    """The property-expansion chart query — the paper's heavy query.

    This is exactly the nested-aggregation shape of Section 4: the inner
    sub-select groups the triples by (member, property), the outer one
    counts, per property, the members featuring it (``?count``, the
    coverage numerator) and the total number of triples (``?sp``).
    """
    if direction is Direction.OUTGOING:
        edge = "?s ?p ?o ."
    else:
        edge = "?o ?p ?s ."
    return (
        "SELECT ?p (COUNT(?p) AS ?count) (SUM(?sp) AS ?triples) WHERE {\n"
        "  { SELECT ?s ?p (COUNT(*) AS ?sp) WHERE {\n"
        f"{pattern.render(indent='      ')}\n"
        f"      {edge}\n"
        "    } GROUP BY ?s ?p }\n"
        "}\nGROUP BY ?p\nORDER BY DESC(?count)"
    )


def object_chart_query(
    pattern: MemberPattern,
    prop: URI,
    direction: Direction = Direction.OUTGOING,
) -> str:
    """The object-expansion chart: connected nodes grouped by their type
    (the Connections tab, Section 3.4)."""
    if direction is Direction.OUTGOING:
        edge = f"?s {prop.n3()} ?node ."
    else:
        edge = f"?node {prop.n3()} ?s ."
    return (
        "SELECT ?type (COUNT(DISTINCT ?node) AS ?count) WHERE {\n"
        f"{pattern.render()}\n"
        f"  {edge}\n"
        f"  ?node {_RDF_TYPE.n3()} ?type .\n"
        "}\nGROUP BY ?type\nORDER BY DESC(?count)"
    )


# ----------------------------------------------------------------------
# Dataset statistics (the "very first queries", Section 3.1)
# ----------------------------------------------------------------------


def total_triples_query() -> str:
    """Total number of RDF triples in the dataset."""
    return "SELECT (COUNT(*) AS ?count) WHERE { ?s ?p ?o . }"


def class_count_query() -> str:
    """Number of declared classes (owl:Class or rdfs:Class subjects)."""
    owl_class = OWL.term("Class")
    rdfs_class = RDFS.term("Class")
    return (
        "SELECT (COUNT(DISTINCT ?c) AS ?count) WHERE {\n"
        f"  {{ ?c {_RDF_TYPE.n3()} {owl_class.n3()} . }}\n"
        f"  UNION {{ ?c {_RDF_TYPE.n3()} {rdfs_class.n3()} . }}\n"
        "}"
    )


def class_list_query() -> str:
    """All declared classes with labels — feeds the autocomplete search
    box (Section 3.2)."""
    owl_class = OWL.term("Class")
    rdfs_class = RDFS.term("Class")
    label = RDFS.term("label")
    return (
        "SELECT DISTINCT ?c ?label WHERE {\n"
        f"  {{ ?c {_RDF_TYPE.n3()} {owl_class.n3()} . }}\n"
        f"  UNION {{ ?c {_RDF_TYPE.n3()} {rdfs_class.n3()} . }}\n"
        f"  OPTIONAL {{ ?c {label.n3()} ?label . }}\n"
        "}"
    )


def class_instance_count_query(cls: URI) -> str:
    """Instance count of one class."""
    return (
        "SELECT (COUNT(DISTINCT ?s) AS ?count) WHERE {\n"
        f"  ?s {_RDF_TYPE.n3()} {cls.n3()} .\n}}"
    )


def subclass_counts_query(cls: URI) -> str:
    """Direct subclasses of ``cls`` (the pane's hover statistics)."""
    subclass = RDFS.term("subClassOf")
    return (
        "SELECT DISTINCT ?sub WHERE {\n"
        f"  ?sub {subclass.n3()} {cls.n3()} .\n}}"
    )


def subclass_closure_query(cls: URI) -> str:
    """All direct *and indirect* subclasses of ``cls`` in one query,
    via a ``rdfs:subClassOf+`` property path — the 'subclasses in total'
    figure of the hover box without N round trips."""
    subclass = RDFS.term("subClassOf")
    return (
        "SELECT DISTINCT ?sub WHERE {\n"
        f"  ?sub {subclass.n3()}+ {cls.n3()} .\n}}"
    )


def labels_query(uris: Sequence[URI]) -> str:
    """rdfs:label lookup for a batch of URIs (Section 3.1: eLinda "makes
    extensive use of standard rdfs:label properties")."""
    label = RDFS.term("label")
    values = " ".join(uri.n3() for uri in uris)
    return (
        "SELECT ?s ?label WHERE {\n"
        f"  VALUES ?s {{ {values} }}\n"
        f"  ?s {label.n3()} ?label .\n}}"
    )


def property_values_query(
    pattern: MemberPattern,
    props: Sequence[URI],
    limit: Optional[int] = None,
) -> str:
    """The data-table query: members with their values for the selected
    property columns (Section 3.3, "Browse instance data")."""
    lines = [pattern.render()]
    select_vars = ["?s"]
    for index, prop in enumerate(props):
        var = f"?col{index}"
        select_vars.append(var)
        lines.append(f"  OPTIONAL {{ ?s {prop.n3()} {var} . }}")
    body = "\n".join(lines)
    suffix = f"\nLIMIT {limit}" if limit is not None else ""
    return (
        f"SELECT {' '.join(select_vars)} WHERE {{\n{body}\n}}"
        f"\nORDER BY ?s{suffix}"
    )
