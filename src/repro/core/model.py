"""The paper's formal model: bars and bar charts (Section 2).

A *bar* is a triple ``B = <S, lambda, t>`` where ``S`` is a set of URIs,
``lambda`` is the bar's label, and ``t`` is its type — ``class`` (the
URIs are associated with some class) or ``property`` (the URIs are
associated with some property).  A *bar chart* maps each label in
``labels(B)`` to a bar with that label.

Bars here additionally carry presentation metadata (count, coverage,
direction, a SPARQL membership pattern) that the UI layer and the
endpoint-backed chart engine need; the formal content is exactly the
paper's.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..rdf.terms import URI

__all__ = ["BarType", "Direction", "Bar", "BarChart"]


class BarType(enum.Enum):
    """The type ``t`` of a bar."""

    CLASS = "class"
    PROPERTY = "property"


class Direction(enum.Enum):
    """Whether a property/object expansion follows outgoing or ingoing
    edges (Section 2: "We similarly define the incoming versions")."""

    OUTGOING = "outgoing"
    INCOMING = "incoming"


@dataclass(frozen=True)
class Bar:
    """A bar ``<S, label, type>``.

    ``uris`` holds ``S`` when the bar was computed by the reference
    (in-memory) expansions; endpoint-backed bars may carry only ``count``
    plus a ``pattern`` from which members can be fetched lazily.  At
    least one of the two is always present.
    """

    label: URI
    type: BarType
    uris: Optional[frozenset] = None
    count: Optional[int] = None
    #: SPARQL group-graph-pattern text with ``{S}`` as the member variable
    #: (see :mod:`repro.core.queries`); powers "generate SPARQL code to
    #: extract each of the bars along the exploration".
    pattern: Optional[str] = None
    #: For property bars: the fraction of the parent set featuring the
    #: property (the paper's *coverage*, Section 3.3).
    coverage: Optional[float] = None
    direction: Optional[Direction] = None

    def __post_init__(self) -> None:
        if self.uris is None and self.count is None:
            raise ValueError("a bar needs an explicit URI set or a count")

    @property
    def size(self) -> int:
        """``|S|`` — the bar's height."""
        if self.uris is not None:
            return len(self.uris)
        assert self.count is not None
        return self.count

    def with_uris(self, uris: frozenset) -> "Bar":
        """A copy with members materialised."""
        return replace(self, uris=frozenset(uris), count=len(uris))

    def filter(self, condition: Callable[[URI], bool]) -> "Bar":
        """The paper's *filter* operation: remove the URIs of ``S`` that
        violate ``condition``.  Requires materialised members."""
        if self.uris is None:
            raise ValueError("cannot filter a bar without materialised URIs")
        kept = frozenset(uri for uri in self.uris if condition(uri))
        return replace(self, uris=kept, count=len(kept))

    def __contains__(self, uri: object) -> bool:
        if self.uris is None:
            raise ValueError("bar members are not materialised")
        return uri in self.uris

    def __repr__(self) -> str:
        return (
            f"Bar({self.label.local_name!r}, {self.type.value}, "
            f"size={self.size})"
        )


class BarChart:
    """A finite map from labels to bars, presented tallest-first.

    eLinda sorts bars "by decreasing significance (i.e., support in the
    dataset)" (Section 1); iteration respects that order, ties broken by
    label for determinism.
    """

    def __init__(self, bars: Dict[URI, Bar] | List[Bar] | None = None):
        if bars is None:
            bars = {}
        if isinstance(bars, list):
            mapping: Dict[URI, Bar] = {}
            for bar in bars:
                if bar.label in mapping:
                    raise ValueError(f"duplicate bar label: {bar.label}")
                mapping[bar.label] = bar
            bars = mapping
        self._bars: Dict[URI, Bar] = dict(bars)

    # ------------------------------------------------------------------
    # Formal-model accessors
    # ------------------------------------------------------------------

    def labels(self) -> List[URI]:
        """``labels(B)``, sorted by decreasing bar height."""
        return [bar.label for bar in self.sorted_bars()]

    def __getitem__(self, label: URI) -> Bar:
        """``B[label]``."""
        return self._bars[label]

    def get(self, label: URI) -> Optional[Bar]:
        return self._bars.get(label)

    def __contains__(self, label: object) -> bool:
        return label in self._bars

    def __len__(self) -> int:
        return len(self._bars)

    def __iter__(self) -> Iterator[Bar]:
        return iter(self.sorted_bars())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BarChart):
            return NotImplemented
        return self._bars == other._bars

    def __repr__(self) -> str:
        return f"<BarChart with {len(self._bars)} bars>"

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def sorted_bars(self) -> List[Bar]:
        """Bars by decreasing height, then label (deterministic)."""
        return sorted(
            self._bars.values(), key=lambda bar: (-bar.size, bar.label.value)
        )

    def top(self, count: int) -> List[Bar]:
        """The ``count`` tallest bars."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self.sorted_bars()[:count]

    def above_coverage(self, threshold: float) -> "BarChart":
        """Bars whose coverage meets ``threshold`` — the property-chart
        significance filter (Section 3.3, default 20 %)."""
        kept = {
            label: bar
            for label, bar in self._bars.items()
            if bar.coverage is not None and bar.coverage >= threshold
        }
        return BarChart(kept)

    def nonempty(self) -> "BarChart":
        """Bars with at least one member."""
        return BarChart(
            {label: bar for label, bar in self._bars.items() if bar.size > 0}
        )

    def total_size(self) -> int:
        """Sum of bar heights (bars may overlap, so this can exceed the
        size of the union)."""
        return sum(bar.size for bar in self._bars.values())

    def filter_bars(self, condition: Callable[[URI], bool]) -> "BarChart":
        """Apply the paper's filter operation to every bar."""
        return BarChart(
            {label: bar.filter(condition) for label, bar in self._bars.items()}
        )

    def as_rows(self) -> List[Tuple[URI, int]]:
        """(label, height) pairs tallest-first — what a rendered chart
        shows and what the benchmark harnesses print."""
        return [(bar.label, bar.size) for bar in self.sorted_bars()]
