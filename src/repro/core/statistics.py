"""Dataset and class statistics.

"The very first queries present the user with general statistics about
the dataset such as the total number of RDF triples, and the number of
classes the dataset has" (Section 3.1).  Pane corners additionally show
the instance total and the number of direct and indirect subclasses
(Section 3.2) — the hover box of Fig. 1 reports exactly these for Agent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..endpoint.base import Endpoint
from ..rdf.terms import Literal, URI
from .queries import (
    class_count_query,
    class_instance_count_query,
    subclass_closure_query,
    subclass_counts_query,
    total_triples_query,
)

__all__ = ["DatasetStatistics", "ClassStatistics", "StatisticsService"]


@dataclass(frozen=True)
class DatasetStatistics:
    """The opening statistics of a dataset."""

    total_triples: int
    class_count: int


@dataclass(frozen=True)
class ClassStatistics:
    """Per-class statistics shown in pane corners and hover boxes."""

    cls: URI
    instance_count: int
    direct_subclasses: int
    total_subclasses: int

    def summary(self) -> str:
        """The hover-box text (cf. Fig. 1's box for Agent)."""
        return (
            f"{self.cls.local_name}: {self.instance_count:,} instances, "
            f"{self.direct_subclasses} direct subclasses, "
            f"{self.total_subclasses} subclasses in total"
        )


def _as_int(term) -> int:
    if isinstance(term, Literal):
        try:
            return int(term.lexical)
        except ValueError:
            return 0
    return 0


class StatisticsService:
    """Computes dataset/class statistics through an endpoint, caching
    subclass lists (they are schema-level and small)."""

    def __init__(self, endpoint: Endpoint):
        self.endpoint = endpoint
        self._subclass_cache: Dict[URI, List[URI]] = {}
        self._cache_version: Optional[int] = None

    def dataset_statistics(self) -> DatasetStatistics:
        """The opening statistics (total triples, class count)."""
        total = _as_int(self.endpoint.select(total_triples_query()).scalar())
        classes = _as_int(self.endpoint.select(class_count_query()).scalar())
        return DatasetStatistics(total_triples=total, class_count=classes)

    def direct_subclasses(self, cls: URI) -> List[URI]:
        """Direct subclasses of ``cls`` (cached per dataset version)."""
        version = self.endpoint.dataset_version
        if version != self._cache_version:
            self._subclass_cache.clear()
            self._cache_version = version
        cached = self._subclass_cache.get(cls)
        if cached is not None:
            return list(cached)
        result = self.endpoint.select(subclass_counts_query(cls))
        subclasses = sorted(
            (term for term in result.column("sub") if isinstance(term, URI)),
            key=lambda uri: uri.value,
        )
        self._subclass_cache[cls] = subclasses
        return list(subclasses)

    def all_subclasses(self, cls: URI) -> Set[URI]:
        """Direct and indirect subclasses of ``cls`` (excluding itself),
        fetched with a single ``rdfs:subClassOf+`` path query."""
        result = self.endpoint.select(subclass_closure_query(cls))
        return {
            term
            for term in result.column("sub")
            if isinstance(term, URI) and term != cls
        }

    def all_subclasses_iterative(self, cls: URI) -> Set[URI]:
        """The same closure via repeated direct-subclass queries (the
        approach a path-less endpoint forces; kept for comparison and
        as the ablation baseline)."""
        found: Set[URI] = set()
        frontier = self.direct_subclasses(cls)
        while frontier:
            current = frontier.pop()
            if current in found or current == cls:
                continue
            found.add(current)
            frontier.extend(self.direct_subclasses(current))
        return found

    def instance_count(self, cls: URI) -> int:
        """Number of instances typed as ``cls``."""
        return _as_int(
            self.endpoint.select(class_instance_count_query(cls)).scalar()
        )

    def class_statistics(self, cls: URI) -> ClassStatistics:
        """The full hover-box statistics for one class."""
        return ClassStatistics(
            cls=cls,
            instance_count=self.instance_count(cls),
            direct_subclasses=len(self.direct_subclasses(cls)),
            total_subclasses=len(self.all_subclasses(cls)),
        )
