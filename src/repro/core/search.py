"""Autocomplete class search (Section 3.2, "Class navigation").

"eLinda provides an autocomplete search box for locating class types,
based on a list that is populated by collecting all subjects in the
dataset of type owl:Class or rdfs:Class. Selecting a class that way,
immediately opens the associated pane without the need to drill down."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..endpoint.base import Endpoint
from ..rdf.terms import Literal, URI
from .queries import class_instance_count_query, class_list_query

__all__ = ["ClassSearchEntry", "ClassSearchIndex"]


@dataclass(frozen=True)
class ClassSearchEntry:
    """One autocomplete candidate."""

    cls: URI
    label: str
    instance_count: int

    def __str__(self) -> str:
        return f"{self.label} ({self.instance_count:,} instances)"


class ClassSearchIndex:
    """In-memory autocomplete index over the dataset's declared classes.

    Matches are ranked by decreasing instance count (the tool's
    significance ordering), ties broken alphabetically.
    """

    def __init__(self, entries: List[ClassSearchEntry]):
        self._entries = sorted(
            entries, key=lambda entry: (-entry.instance_count, entry.label)
        )
        self._by_class: Dict[URI, ClassSearchEntry] = {
            entry.cls: entry for entry in self._entries
        }

    @classmethod
    def build(
        cls, endpoint: Endpoint, with_counts: bool = True
    ) -> "ClassSearchIndex":
        """Populate the index from an endpoint.

        ``with_counts=False`` skips the per-class instance-count queries
        (cheaper start-up; ranking falls back to alphabetical).
        """
        result = endpoint.select(class_list_query())
        seen: Dict[URI, str] = {}
        for row in result:
            declared = row.get("c")
            if not isinstance(declared, URI):
                continue
            label_term = row.get("label")
            label = (
                label_term.lexical
                if isinstance(label_term, Literal)
                else declared.local_name
            )
            # Keep the first (preferentially labelled) entry per class.
            if declared not in seen or isinstance(label_term, Literal):
                seen[declared] = label
        entries = []
        for declared, label in seen.items():
            count = 0
            if with_counts:
                scalar = endpoint.select(
                    class_instance_count_query(declared)
                ).scalar()
                if isinstance(scalar, Literal):
                    try:
                        count = int(scalar.lexical)
                    except ValueError:
                        count = 0
            entries.append(
                ClassSearchEntry(cls=declared, label=label, instance_count=count)
            )
        return cls(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, cls: object) -> bool:
        return cls in self._by_class

    def entry(self, cls: URI) -> Optional[ClassSearchEntry]:
        return self._by_class.get(cls)

    def complete(self, prefix: str, limit: int = 10) -> List[ClassSearchEntry]:
        """Autocomplete: classes whose label or local name starts with
        ``prefix`` (case-insensitive), best-ranked first."""
        if limit <= 0:
            return []
        needle = prefix.strip().lower()
        if not needle:
            return self._entries[:limit]
        matches = [
            entry
            for entry in self._entries
            if entry.label.lower().startswith(needle)
            or entry.cls.local_name.lower().startswith(needle)
        ]
        return matches[:limit]

    def search(self, text: str, limit: int = 10) -> List[ClassSearchEntry]:
        """Substring search (looser than :meth:`complete`)."""
        if limit <= 0:
            return []
        needle = text.strip().lower()
        if not needle:
            return []
        matches = [
            entry
            for entry in self._entries
            if needle in entry.label.lower()
            or needle in entry.cls.local_name.lower()
        ]
        return matches[:limit]
