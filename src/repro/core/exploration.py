"""Exploration paths (Section 2, "Exploration").

An exploration is a sequence ``(lambda_1, eta_1) -> B_1, ...,
(lambda_m, eta_m) -> B_m`` where each chart ``B_i`` is obtained by
selecting the bar labelled ``lambda_i`` from ``B_{i-1}`` and applying
the expansion ``eta_i`` to it.  The class enforces the paper's three
side conditions: (a) the label names a bar of the previous chart,
(b) the expansion is applicable to that bar, (c) the new chart is the
expansion's result.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from ..rdf.graph import Graph
from ..rdf.terms import URI
from .engine import ChartEngine
from .expansions import (
    ExpansionError,
    filter_expansion,
    initial_chart,
    object_expansion,
    property_expansion,
    subclass_expansion,
)
from .model import Bar, BarChart, BarType, Direction

__all__ = ["ExpansionKind", "ExplorationStep", "Exploration"]


class ExpansionKind(enum.Enum):
    """The expansion functions eta that eLinda supports."""

    SUBCLASS = "subclass"
    PROPERTY_OUT = "property-outgoing"
    PROPERTY_IN = "property-incoming"
    OBJECT_OUT = "object-outgoing"
    OBJECT_IN = "object-incoming"

    @property
    def direction(self) -> Direction:
        if self in (ExpansionKind.PROPERTY_IN, ExpansionKind.OBJECT_IN):
            return Direction.INCOMING
        return Direction.OUTGOING

    def applicable_to(self, bar_type: BarType) -> bool:
        """Paper's applicability: subclass/property need class bars,
        object needs property bars."""
        if self in (ExpansionKind.OBJECT_OUT, ExpansionKind.OBJECT_IN):
            return bar_type is BarType.PROPERTY
        return bar_type is BarType.CLASS


@dataclass(frozen=True)
class ExplorationStep:
    """One step ``(lambda_i, eta_i) -> B_i``."""

    label: URI
    expansion: ExpansionKind
    bar: Bar
    chart: BarChart


class Exploration:
    """An exploration over a graph or through a chart engine.

    Construct with a :class:`Graph` (reference semantics, materialised
    bars) or a :class:`ChartEngine` (endpoint-backed, the production
    path); the stepping API is identical.
    """

    def __init__(
        self,
        source: Union[Graph, ChartEngine],
        root_class: Optional[URI] = None,
    ):
        if isinstance(source, Graph):
            if root_class is None:
                raise ValueError("a root class is required with a raw graph")
            self._graph: Optional[Graph] = source
            self._engine: Optional[ChartEngine] = None
            self._initial = initial_chart(source, root_class)
            self.root_class = root_class
        elif isinstance(source, ChartEngine):
            self._graph = None
            self._engine = source
            self._initial = source.initial_chart()
            self.root_class = source.root_class
        else:
            raise TypeError("source must be a Graph or a ChartEngine")
        self.steps: List[ExplorationStep] = []

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def initial(self) -> BarChart:
        """``B_0`` — the predefined initial chart."""
        return self._initial

    @property
    def current(self) -> BarChart:
        """``B_m`` — the chart at the end of the path."""
        if self.steps:
            return self.steps[-1].chart
        return self._initial

    @property
    def length(self) -> int:
        """``m`` — number of steps taken."""
        return len(self.steps)

    def path(self) -> List[tuple]:
        """The (label, expansion) pairs of the path — breadcrumb data."""
        return [(step.label, step.expansion) for step in self.steps]

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(self, label: URI, expansion: ExpansionKind) -> BarChart:
        """Apply ``(label, expansion)`` to the current chart.

        Enforces conditions (a) and (b) of the formal model, raising
        :class:`ExpansionError` when violated.
        """
        chart = self.current
        if label not in chart:
            raise ExpansionError(
                f"label {label.local_name!r} is not in labels(B_{self.length})"
            )
        bar = chart[label]
        if not expansion.applicable_to(bar.type):
            raise ExpansionError(
                f"{expansion.value} is not applicable to a "
                f"{bar.type.value} bar"
            )
        new_chart = self._expand(bar, expansion)
        self.steps.append(
            ExplorationStep(
                label=label, expansion=expansion, bar=bar, chart=new_chart
            )
        )
        return new_chart

    def step_filter(
        self, label: URI, condition: Callable[[URI], bool]
    ) -> BarChart:
        """The filter operation applied to one bar of the current chart,
        yielding a chart over ``S_f`` (reference mode only)."""
        if self._graph is None:
            raise ExpansionError(
                "filter stepping by predicate requires reference (graph) mode"
            )
        chart = self.current
        if label not in chart:
            raise ExpansionError(
                f"label {label.local_name!r} is not in labels(B_{self.length})"
            )
        bar = chart[label]
        filtered = filter_expansion(bar, condition)
        new_chart = BarChart([filtered])
        self.steps.append(
            ExplorationStep(
                label=label,
                expansion=ExpansionKind.SUBCLASS,  # filter reuses class typing
                bar=filtered,
                chart=new_chart,
            )
        )
        return new_chart

    def back(self) -> BarChart:
        """Undo the last step; returns the now-current chart."""
        if not self.steps:
            raise IndexError("already at the initial chart")
        self.steps.pop()
        return self.current

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _expand(self, bar: Bar, expansion: ExpansionKind) -> BarChart:
        if self._graph is not None:
            graph = self._graph
            if expansion is ExpansionKind.SUBCLASS:
                return subclass_expansion(graph, bar)
            if expansion in (
                ExpansionKind.PROPERTY_OUT,
                ExpansionKind.PROPERTY_IN,
            ):
                return property_expansion(graph, bar, expansion.direction)
            return object_expansion(graph, bar, expansion.direction)
        assert self._engine is not None
        engine = self._engine
        if expansion is ExpansionKind.SUBCLASS:
            return engine.subclass_chart(bar)
        if expansion in (ExpansionKind.PROPERTY_OUT, ExpansionKind.PROPERTY_IN):
            return engine.property_chart(bar, expansion.direction)
        return engine.object_chart(bar, expansion.direction)
