"""A LinkedGeoData-like synthetic dataset: no root class, no hierarchy.

The paper notes that eLinda "also handle[s] the case of datasets with no
root class, as found in LinkedGeoData" (Section 3.1, footnote 7) and that
datasets without a class hierarchy "may be browsed with eLinda however in
a limited fashion".  This generator produces exactly that shape: flat
classes declared as ``owl:Class`` with *no* ``rdfs:subClassOf`` triples
and no ``owl:Thing`` typing on instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..rdf.namespace import Namespace
from .synthetic import OntologyBuilder, SyntheticDataset
from .zipf import allocate_zipf

__all__ = ["LGDConfig", "generate_lgd", "LGDO", "LGDR"]

LGDO = Namespace("http://linkedgeodata.org/ontology/")
LGDR = Namespace("http://linkedgeodata.org/triplify/")

_FLAT_CLASSES = [
    "Amenity",
    "Highway",
    "Building",
    "Shop",
    "Tourism",
    "Leisure",
    "Natural",
    "Railway",
    "Waterway",
    "Aeroway",
    "Historic",
    "Power",
]

_CLASS_PROPERTIES = {
    "Amenity": [("operator", 0.4), ("openingHours", 0.3)],
    "Highway": [("maxSpeed", 0.5), ("surface", 0.45), ("lanes", 0.3)],
    "Building": [("levels", 0.4), ("roofShape", 0.2)],
    "Shop": [("brand", 0.35), ("website", 0.25)],
    "Tourism": [("fee", 0.3)],
    "Leisure": [("sport", 0.4)],
}


@dataclass(frozen=True)
class LGDConfig:
    """Generator parameters for the LinkedGeoData-like dataset."""

    total_instances: int = 600
    seed: int = 7


def generate_lgd(config: Optional[LGDConfig] = None) -> SyntheticDataset:
    """Generate the flat, root-less geographic dataset."""
    config = config or LGDConfig()
    builder = OntologyBuilder(LGDO, LGDR, seed=config.seed, name="lgd-synthetic")
    classes = {name: builder.add_class(name) for name in _FLAT_CLASSES}

    shares = allocate_zipf(config.total_instances, len(_FLAT_CLASSES), 1.1)
    for name, share in zip(_FLAT_CLASSES, shares):
        instances = builder.add_instances(
            classes[name], max(1, share), materialise_chain=False
        )
        # Every feature has coordinates.
        builder.cover_with_property(instances, "lat", 1.0)
        builder.cover_with_property(instances, "long", 1.0)
        for prop_name, coverage in _CLASS_PROPERTIES.get(name, ()):
            builder.cover_with_property(instances, prop_name, coverage)

    return builder.build(
        facts={
            "classes": [classes[name] for name in _FLAT_CLASSES],
            "config": config,
        }
    )
