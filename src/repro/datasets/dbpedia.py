"""A deterministic synthetic DBpedia-like dataset.

The generator reproduces, at laptop scale, every structural fact the
paper states about DBpedia:

* 49 top-level classes under ``owl:Thing``, of which 22 have no
  instances at all (Section 1);
* ``Agent`` is the second-largest class, with 5 direct subclasses and
  277 subclasses in total (Section 3.2, Fig. 1 hover box);
* the class path Thing -> Agent -> Person -> Philosopher exists
  (Section 3.2, Fig. 2);
* ``Politician`` features 1,482 distinct outgoing properties of which
  exactly 38 reach the 20 % coverage threshold (Section 3.3);
* ``Philosopher`` has exactly 9 ingoing properties at >= 20 % coverage,
  among them ``author`` (Section 3.3);
* philosophers are ``influencedBy`` persons of several types, including
  scientists (Section 3.4, Fig. 2);
* some philosophers were born in Vienna (Section 3.3 data-filter demo).

Absolute instance counts are the paper's numbers multiplied by
``scale`` (the substitution documented in DESIGN.md); all *counted*
claims above are scale-independent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from ..rdf.terms import Literal, URI
from ..rdf.vocab import DBO, DBR, OWL
from .synthetic import OntologyBuilder, SyntheticDataset
from .zipf import allocate_zipf

__all__ = ["DBpediaConfig", "generate_dbpedia", "recommended_scale", "OWL_THING"]

OWL_THING = OWL.term("Thing")

#: Paper-scale instance counts for the headline classes.
_PAPER_COUNTS = {
    "Place": 2_400_000,
    "Agent": 2_200_000,  # "more than 2 million instances"
    "Work": 1_200_000,
    "Species": 530_000,
    "Event": 400_000,
    "Politician": 40_000,  # "nearly 40,000 instances of type Politician"
    "Philosopher": 2_600,
    "Scientist": 20_000,
    "Writer": 30_000,
    "Athlete": 300_000,
    "Food": 25_000,
}

#: The remaining populated top-level classes (21, Zipf-allocated counts).
_OTHER_POPULATED_TOP = [
    "TopicalConcept",
    "MeanOfTransportation",
    "Device",
    "ChemicalSubstance",
    "Activity",
    "AnatomicalStructure",
    "Award",
    "Biomolecule",
    "CelestialBody",
    "Disease",
    "EthnicGroup",
    "Language",
    "Currency",
    "Colour",
    "Name",
    "SportsSeason",
    "TimePeriod",
    "Holiday",
    "Medicine",
    "MilitaryConflict",
    "Algorithm",
]

#: The 22 declared-but-empty top-level classes (Section 1: "almost half
#: of the classes (22) do not have instances at all").
_EMPTY_TOP = [
    "Altitude",
    "Area",
    "Blazon",
    "Cipher",
    "Demographics",
    "Depth",
    "Diploma",
    "ElectionDiagram",
    "FileSystem",
    "GeneLocation",
    "GrossDomesticProduct",
    "Identifier",
    "ListCollection",
    "MedicalSpecialty",
    "PersonFunction",
    "Population",
    "Protocol",
    "PublicService",
    "Relationship",
    "StarCluster",
    "Tank",
    "UnitOfWork",
]

#: Agent must have exactly this many subclasses in total (Fig. 1 hover).
_AGENT_TOTAL_SUBCLASSES = 277
#: ... and exactly this many direct ones.
_AGENT_DIRECT_SUBCLASSES = 5

#: Generic Person-level properties: (name, coverage, kind); these reach
#: the >= 20 % threshold for every Person subclass when coverage >= 0.24.
_PERSON_PROPERTIES = [
    ("birthPlace", 0.76, "place"),
    ("birthDate", 0.72, "literal"),
    ("name", 0.95, "literal"),
    ("deathPlace", 0.32, "place"),
    ("deathDate", 0.30, "literal"),
    ("nationality", 0.46, "literal"),
    ("almaMater", 0.26, "literal"),
]

#: Politician-specific significant properties (29 of them; together with
#: the 7 generic Person properties plus rdf:type and rdfs:label this
#: yields exactly 38 properties at >= 20 % coverage).
_POLITICIAN_SIGNIFICANT = [
    ("party", 0.86),
    ("office", 0.82),
    ("termStart", 0.62),
    ("termEnd", 0.58),
    ("successor", 0.44),
    ("predecessor", 0.42),
    ("constituency", 0.38),
    ("profession", 0.34),
    ("education", 0.30),
    ("residence", 0.29),
    ("religion", 0.27),
    ("award", 0.26),
    ("militaryBranch", 0.25),
    ("militaryRank", 0.24),
    ("spouse", 0.48),
    ("child", 0.36),
    ("country", 0.66),
    ("vicePresident", 0.24),
    ("primeMinister", 0.25),
    ("governor", 0.24),
    ("lieutenant", 0.26),
    ("cabinet", 0.28),
    ("senateTerm", 0.30),
    ("houseTerm", 0.27),
    ("electionDate", 0.40),
    ("votes", 0.33),
    ("majority", 0.24),
    ("monarch", 0.25),
    ("deputy", 0.26),
]

#: Number of distinct properties Politician instances must feature in
#: total (Section 3.3).
_POLITICIAN_TOTAL_PROPERTIES = 1482

#: Philosopher ingoing properties at >= 20 % coverage: exactly 9, with
#: ``author`` among them (Section 3.3).  (name, coverage, subject pool).
_PHILOSOPHER_INGOING = [
    ("author", 0.56, "work"),
    ("doctoralAdvisor", 0.46, "person"),
    ("doctoralStudent", 0.42, "person"),
    ("notableStudent", 0.36, "person"),
    ("influenced", 0.32, "person"),
    ("academicAdvisor", 0.28, "person"),
    ("relative", 0.24, "person"),
    ("namedAfter", 0.23, "work"),
    # influencedBy is the 9th: generated with controlled object coverage.
]

#: Philosopher ingoing properties kept *below* the 20 % threshold.
_PHILOSOPHER_INGOING_RARE = [
    ("depiction", 0.10, "work"),
    ("quotation", 0.06, "work"),
    ("dedicatedTo", 0.04, "work"),
]


@dataclass(frozen=True)
class DBpediaConfig:
    """Generator parameters.

    ``scale`` multiplies the paper's instance counts; the default keeps
    the graph small enough for unit tests while every structural claim
    stays exact.  ``min_story_instances`` floors the classes that the
    demo scenarios need populated regardless of scale.
    """

    scale: float = 0.00025
    seed: int = 42
    min_story_instances: int = 20
    philosopher_min: int = 40
    politician_min: int = 25

    def scaled(self, paper_count: int, minimum: int = 2) -> int:
        return max(minimum, round(paper_count * self.scale))


#: Calibration constant tying the remote cost model to the paper's
#: Fig. 4 headline (454 s for the level-zero outgoing expansion at the
#: default ``scale``); see EXPERIMENTS.md for the calibration record.
_REMOTE_CALIBRATION = 1.98


def recommended_scale(config: DBpediaConfig) -> float:
    """Dataset-size multiplier for the remote endpoint's cost model.

    The paper's DBpedia mirror is roughly ``1/config.scale`` times
    larger than the synthetic graph, so per-binding join work on heavy
    queries is scaled up accordingly (see
    :class:`repro.endpoint.cost.CostModel`).  Use as::

        profile = REMOTE_VIRTUOSO_PROFILE.scaled(recommended_scale(config))
    """
    return _REMOTE_CALIBRATION / config.scale


def generate_dbpedia(config: Optional[DBpediaConfig] = None) -> SyntheticDataset:
    """Generate the synthetic DBpedia-like dataset."""
    config = config or DBpediaConfig()
    builder = OntologyBuilder(DBO, DBR, seed=config.seed, name="dbpedia-synthetic")
    facts: Dict[str, object] = {"config": config}

    thing = builder.add_class("Thing", declare=True, uri=OWL_THING)
    # 49 top-level classes.
    top_level: Dict[str, URI] = {}
    for name in list(_PAPER_COUNTS)[:5] + ["Food"]:
        top_level[name] = builder.add_class(name, parent=thing)
    for name in _OTHER_POPULATED_TOP:
        top_level[name] = builder.add_class(name, parent=thing)
    for name in _EMPTY_TOP:
        top_level[name] = builder.add_class(name, parent=thing)
    assert len(builder.children[thing]) == 49, len(builder.children[thing])

    agent = top_level["Agent"]

    # ------------------------------------------------------------------
    # Agent subtree: 5 direct children, 277 subclasses in total.
    # ------------------------------------------------------------------
    person = builder.add_class("Person", parent=agent)
    organisation = builder.add_class("Organisation", parent=agent)
    deity = builder.add_class("Deity", parent=agent)
    family = builder.add_class("Family", parent=agent)
    builder.add_class("FictionalCharacter", parent=agent)
    assert len(builder.children[agent]) == _AGENT_DIRECT_SUBCLASSES

    person_occupations = [
        "Philosopher",
        "Politician",
        "Scientist",
        "Artist",
        "Athlete",
        "Writer",
        "Cleric",
        "Journalist",
        "Engineer",
        "Monarch",
        "MilitaryPerson",
        "Musician",
        "Judge",
        "Lawyer",
        "Architect",
        "Astronaut",
        "Chef",
        "Economist",
        "Historian",
        "Model",
        "Noble",
        "OfficeHolder",
        "Psychologist",
        "Royalty",
    ]
    person_classes: Dict[str, URI] = {}
    for name in person_occupations:
        person_classes[name] = builder.add_class(name, parent=person)
    artist = person_classes["Artist"]
    for name in ["Actor", "Painter", "Sculptor", "ComicsCreator", "Comedian"]:
        person_classes[name] = builder.add_class(name, parent=artist)
    athlete = person_classes["Athlete"]
    athlete_types = [
        "SoccerPlayer",
        "BasketballPlayer",
        "BaseballPlayer",
        "Cyclist",
        "TennisPlayer",
        "Swimmer",
        "Boxer",
        "Wrestler",
        "GolfPlayer",
        "RugbyPlayer",
        "CricketPlayer",
        "IceHockeyPlayer",
        "HandballPlayer",
        "VolleyballPlayer",
        "Rower",
        "Skier",
        "Gymnast",
        "MartialArtist",
        "Canoeist",
        "DartsPlayer",
    ]
    for name in athlete_types:
        person_classes[name] = builder.add_class(name, parent=athlete)

    organisation_types = [
        "Company",
        "University",
        "School",
        "Band",
        "PoliticalParty",
        "SportsTeam",
        "NonProfitOrganisation",
        "GovernmentAgency",
        "Legislature",
        "MilitaryUnit",
        "TradeUnion",
        "Library",
        "Hospital",
        "Museum",
    ]
    organisation_classes: Dict[str, URI] = {}
    for name in organisation_types:
        organisation_classes[name] = builder.add_class(name, parent=organisation)
    company = organisation_classes["Company"]
    for name in [
        "Airline",
        "Bank",
        "Brewery",
        "BusCompany",
        "LawFirm",
        "Publisher",
        "RecordLabel",
        "Winery",
    ]:
        organisation_classes[name] = builder.add_class(name, parent=company)

    # Filler leaf classes to reach exactly 277 subclasses under Agent —
    # mirroring DBpedia, where most Agent subclasses carry few or no
    # instances.
    def agent_subtree_size() -> int:
        frontier = list(builder.children[agent])
        seen = set()
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(builder.children[current])
        return len(seen)

    filler_needed = _AGENT_TOTAL_SUBCLASSES - agent_subtree_size()
    assert filler_needed >= 0, "named Agent subtree exceeds 277 classes"
    filler_parents = itertools.cycle([person, organisation, athlete, company])
    for index in range(filler_needed):
        builder.add_class(f"AgentRole{index + 1:03d}", parent=next(filler_parents))
    assert agent_subtree_size() == _AGENT_TOTAL_SUBCLASSES

    # ------------------------------------------------------------------
    # Work subtree (needed for the 'author' ingoing property).
    # ------------------------------------------------------------------
    work = top_level["Work"]
    book = builder.add_class("Book", parent=work)
    builder.add_class("Film", parent=work)
    builder.add_class("MusicalWork", parent=work)

    # ------------------------------------------------------------------
    # Instances
    # ------------------------------------------------------------------
    place = top_level["Place"]
    city = builder.add_class("City", parent=place)
    places = builder.add_instances(
        place, config.scaled(_PAPER_COUNTS["Place"], 60)
    )
    cities = builder.add_instances(city, max(20, config.scaled(400_000)))
    vienna = DBR.term("Vienna")
    for typed in (city, place, thing):
        builder.graph.add(vienna, _rdf_type(), typed)
    builder.graph.add(vienna, _rdfs_label(), Literal("Vienna", language="en"))
    builder.instances_of.setdefault(city, set()).add(vienna)
    builder.instances_of.setdefault(place, set()).add(vienna)
    builder.instances_of.setdefault(thing, set()).add(vienna)
    cities = cities + [vienna]
    all_places = places + cities

    philosophers = builder.add_instances(
        person_classes["Philosopher"],
        max(config.philosopher_min, config.scaled(_PAPER_COUNTS["Philosopher"])),
    )
    politicians = builder.add_instances(
        person_classes["Politician"],
        max(config.politician_min, config.scaled(_PAPER_COUNTS["Politician"])),
    )
    scientists = builder.add_instances(
        person_classes["Scientist"],
        max(25, config.scaled(_PAPER_COUNTS["Scientist"])),
    )
    writers = builder.add_instances(
        person_classes["Writer"],
        max(15, config.scaled(_PAPER_COUNTS["Writer"])),
    )
    athletes = builder.add_instances(
        athlete, max(30, config.scaled(_PAPER_COUNTS["Athlete"]))
    )
    # Scatter some instances over the remaining person occupations.
    other_person_total = max(40, config.scaled(500_000))
    other_classes = [
        person_classes[name]
        for name in ("Musician", "Journalist", "Engineer", "Cleric", "Actor")
    ]
    for cls, share in zip(
        other_classes, allocate_zipf(other_person_total, len(other_classes))
    ):
        builder.add_instances(cls, max(2, share))
    persons_direct = builder.add_instances(
        person, max(50, config.scaled(800_000))
    )

    organisations = builder.add_instances(
        organisation, max(25, config.scaled(600_000))
    )
    builder.add_instances(
        organisation_classes["Company"], max(15, config.scaled(250_000))
    )
    builder.add_instances(deity, max(3, config.scaled(3_000)))
    builder.add_instances(family, max(3, config.scaled(20_000)))

    works = builder.add_instances(work, max(40, config.scaled(_PAPER_COUNTS["Work"])))
    books = builder.add_instances(book, max(15, config.scaled(300_000)))
    species = builder.add_instances(
        top_level["Species"], config.scaled(_PAPER_COUNTS["Species"], 20)
    )
    events = builder.add_instances(
        top_level["Event"], config.scaled(_PAPER_COUNTS["Event"], 15)
    )
    foods = builder.add_instances(
        top_level["Food"], max(config.min_story_instances, config.scaled(_PAPER_COUNTS["Food"]))
    )
    # Populate the 21 remaining top-level classes with a Zipf tail.
    tail_total = max(60, config.scaled(900_000))
    for name, share in zip(
        _OTHER_POPULATED_TOP, allocate_zipf(tail_total, len(_OTHER_POPULATED_TOP), 1.1)
    ):
        builder.add_instances(top_level[name], max(1, share))

    # Keep Agent the *second* largest class (Fig. 1 hover box): the
    # story-class minimums can inflate the Agent subtree at tiny scales,
    # so top Place up above it.
    agent_count = len(builder.instances_of[agent])
    place_count = len(builder.instances_of[place])
    if place_count <= agent_count:
        extra = builder.add_instances(place, agent_count - place_count + 10)
        all_places = all_places + extra

    all_persons = sorted(builder.instances_of[person], key=lambda u: u.value)

    # ------------------------------------------------------------------
    # Generic Person properties — applied per primary-class group so the
    # coverage is exact within each subclass (threshold logic is tested
    # against these numbers).
    # ------------------------------------------------------------------
    person_groups = [
        philosophers,
        politicians,
        scientists,
        writers,
        athletes,
        persons_direct,
    ]
    for name, coverage, kind in _PERSON_PROPERTIES:
        for group in person_groups:
            objects = all_places if kind == "place" else None
            builder.cover_with_property(group, name, coverage, objects=objects)

    # Some philosophers born in Vienna (the Section 3.3 data-filter demo).
    vienna_born = philosophers[: max(3, len(philosophers) // 10)]
    birth_place = builder.property_uri("birthPlace")
    for philosopher in vienna_born:
        builder.graph.add(philosopher, birth_place, vienna)

    # ------------------------------------------------------------------
    # Philosopher story
    # ------------------------------------------------------------------
    # Outgoing influencedBy with controlled object coverage: the first
    # half of the philosopher list is guaranteed to appear as objects
    # (ingoing coverage >= 50 % > threshold), mixed with scientists and
    # writers so the Connections tab shows a Scientist bar (Fig. 2).
    influenced_by = builder.property_uri("influencedBy")
    influencer_targets = (
        philosophers[: len(philosophers) // 2]
        + scientists[: max(4, len(scientists) // 3)]
        + writers[: max(2, len(writers) // 4)]
    )
    target_cycle = itertools.cycle(influencer_targets)
    influenced_philosophers = philosophers[: int(len(philosophers) * 0.6)]
    for philosopher in influenced_philosophers:
        for _ in range(2):
            target = next(target_cycle)
            if target != philosopher:
                builder.graph.add(philosopher, influenced_by, target)
    facts["influencer_targets"] = list(influencer_targets)

    for name, coverage in [
        ("mainInterest", 0.56),
        ("notableIdea", 0.36),
        ("era", 0.50),
        ("school", 0.30),
    ]:
        builder.cover_with_property(philosophers, name, coverage)

    # Ingoing philosopher properties with exact coverage.
    work_cycle = itertools.cycle(works + books)
    person_cycle = itertools.cycle(persons_direct)
    for name, coverage, pool in _PHILOSOPHER_INGOING + _PHILOSOPHER_INGOING_RARE:
        prop = builder.property_uri(name)
        covered = philosophers[: int(len(philosophers) * coverage)]
        for philosopher in covered:
            subject = next(work_cycle) if pool == "work" else next(person_cycle)
            builder.graph.add(subject, prop, philosopher)

    # ------------------------------------------------------------------
    # Politician story: exactly 38 significant properties (including
    # rdf:type and rdfs:label at 100 %), 1,482 distinct in total.
    # ------------------------------------------------------------------
    for name, coverage in _POLITICIAN_SIGNIFICANT:
        objects = None
        if name in ("spouse", "child", "successor", "predecessor"):
            objects = all_persons
        elif name == "country":
            objects = places
        builder.cover_with_property(politicians, name, coverage, objects=objects)
    significant_on_politician = (
        {"type", "label"}
        | {name for name, _cov, _k in _PERSON_PROPERTIES}
        | {name for name, _cov in _POLITICIAN_SIGNIFICANT}
    )
    rare_needed = _POLITICIAN_TOTAL_PROPERTIES - len(significant_on_politician)
    politician_cycle = itertools.cycle(politicians)
    for index in range(rare_needed):
        prop = builder.property_uri(f"rareStatistic{index + 1:04d}")
        builder.graph.add(
            next(politician_cycle), prop, Literal(f"value {index + 1}")
        )
    facts["politician_significant_count"] = len(significant_on_politician)
    facts["politician_total_properties"] = _POLITICIAN_TOTAL_PROPERTIES

    # ------------------------------------------------------------------
    # Light-touch realism for the rest of the graph.
    # ------------------------------------------------------------------
    builder.cover_with_property(works, "author", 0.4, objects=writers or all_persons)
    builder.cover_with_property(works, "releaseDate", 0.5)
    builder.cover_with_property(all_places, "country", 0.6)
    builder.cover_with_property(all_places, "populationTotal", 0.45)
    # Places carry a rich property set (Place is the largest class, and
    # the Section 5 scenario analyses its twenty most significant
    # properties — so at least that many must clear the threshold).
    for name, coverage in [
        ("elevation", 0.55),
        ("areaTotal", 0.52),
        ("timeZone", 0.58),
        ("postalCode", 0.40),
        ("leaderName", 0.38),
        ("foundingYear", 0.36),
        ("utcOffset", 0.50),
        ("areaCode", 0.42),
        ("district", 0.34),
        ("region", 0.44),
        ("censusYear", 0.30),
        ("populationDensity", 0.33),
        ("geologicPeriod", 0.22),
        ("climate", 0.28),
        ("motto", 0.24),
        ("demonym", 0.26),
        ("mayor", 0.25),
        ("twinCity", 0.23),
    ]:
        builder.cover_with_property(all_places, name, coverage)
    builder.cover_with_property(species, "conservationStatus", 0.5)
    builder.cover_with_property(events, "date", 0.6)
    builder.cover_with_property(events, "place", 0.4, objects=all_places)
    builder.cover_with_property(foods, "ingredient", 0.5)
    builder.cover_with_property(organisations, "foundingDate", 0.4)
    builder.cover_with_property(
        organisations, "headquarter", 0.35, objects=all_places
    )
    # URI-valued link structure (keeps the incoming/outgoing work ratio
    # of the level-zero expansions close to the paper's 124 s / 454 s).
    # Philosophers are excluded from the generic object pools so the
    # exact count of significant ingoing Philosopher properties (9) is
    # controlled solely by the dedicated story triples above.
    philosopher_set = set(philosophers)
    non_phil_persons = [p for p in all_persons if p not in philosopher_set]
    builder.cover_with_property(all_places, "isPartOf", 0.9, objects=all_places)
    builder.cover_with_property(
        works, "starring", 0.6, objects=non_phil_persons, fanout=2
    )
    builder.cover_with_property(books, "publisher", 0.5, objects=organisations)
    builder.cover_with_property(persons_direct, "residence", 0.35, objects=all_places)
    builder.cover_with_property(persons_direct, "knownFor", 0.30, objects=works)
    builder.cover_with_property(events, "participant", 0.5, objects=non_phil_persons)
    builder.cover_with_property(organisations, "location", 0.5, objects=all_places)
    # Wiki-page links: untyped page resources pointing at typed
    # instances, as in real DBpedia (wikiPageWikiLink dominates the
    # *incoming* level-zero property expansion without adding outgoing
    # work for typed subjects — this drives the Fig. 4 in/out ratio).
    wiki_link = builder.property_uri("wikiPageWikiLink")
    link_targets = (
        non_phil_persons + all_places + works + organisations + foods
    )
    link_count = max(200, int(len(link_targets) * 0.9))
    for index in range(link_count):
        page = builder.resource_ns.term(f"WikiPage_{index + 1}")
        for offset in (0, 7, 19):
            target = link_targets[(index * 3 + offset) % len(link_targets)]
            builder.graph.add(page, wiki_link, target)

    facts.update(
        thing=thing,
        agent=agent,
        person=person,
        philosopher=person_classes["Philosopher"],
        politician=person_classes["Politician"],
        scientist=person_classes["Scientist"],
        writer=person_classes["Writer"],
        food=top_level["Food"],
        place=place,
        work=work,
        vienna=vienna,
        philosophers=list(philosophers),
        politicians=list(politicians),
        foods=list(foods),
        vienna_born=list(vienna_born),
        top_level_classes=[cls for cls in builder.children[thing]],
        empty_top_level=[top_level.get(name) or DBO.term(name) for name in _EMPTY_TOP],
        philosopher_ingoing_significant=[
            name for name, _cov, _pool in _PHILOSOPHER_INGOING
        ]
        + ["influencedBy"],
    )
    return builder.build(facts)


def _rdf_type() -> URI:
    from ..rdf.vocab import RDF

    return RDF.term("type")


def _rdfs_label() -> URI:
    from ..rdf.vocab import RDFS

    return RDFS.term("label")
