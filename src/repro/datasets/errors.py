"""Erroneous-data injection for the error-detection demo scenario.

The paper's third demonstration scenario "illustrate[s] how eLinda can be
used to detect erroneous data such as 'people who are indicated to be
born in resources of type food'" (Section 5).  This module plants exactly
such errors in a synthetic dataset so the object expansion on
``birthPlace`` surfaces a ``Food`` bar.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..rdf.terms import URI
from ..rdf.vocab import DBO
from .synthetic import SyntheticDataset

__all__ = ["inject_birthplace_errors", "planted_errors"]

_BIRTH_PLACE = DBO.term("birthPlace")
_FACT_KEY = "planted_birthplace_errors"


def inject_birthplace_errors(
    dataset: SyntheticDataset,
    count: int = 5,
    persons: Sequence[URI] | None = None,
    foods: Sequence[URI] | None = None,
) -> List[Tuple[URI, URI]]:
    """Add ``count`` triples asserting persons were born in Food resources.

    Uses the dataset's ground-truth person/food pools unless explicit
    sequences are given.  Returns the planted (person, food) pairs and
    records them under ``dataset.facts['planted_birthplace_errors']``.
    """
    if persons is None:
        person_class = dataset.facts.get("person")
        if not isinstance(person_class, URI):
            raise ValueError("dataset has no 'person' ground-truth fact")
        persons = sorted(dataset.instances_of[person_class], key=lambda u: u.value)
    if foods is None:
        food_pool = dataset.facts.get("foods")
        if not isinstance(food_pool, list) or not food_pool:
            raise ValueError("dataset has no 'foods' ground-truth fact")
        foods = food_pool
    if count <= 0:
        raise ValueError("count must be positive")
    if not persons or not foods:
        raise ValueError("need non-empty person and food pools")

    planted: List[Tuple[URI, URI]] = []
    with dataset.graph.bulk():
        for index in range(count):
            person = persons[index % len(persons)]
            food = foods[index % len(foods)]
            dataset.graph.add(person, _BIRTH_PLACE, food)
            planted.append((person, food))
    existing = dataset.facts.setdefault(_FACT_KEY, [])
    assert isinstance(existing, list)
    existing.extend(planted)
    return planted


def planted_errors(dataset: SyntheticDataset) -> List[Tuple[URI, URI]]:
    """The (person, food) pairs planted so far (empty if none)."""
    value = dataset.facts.get(_FACT_KEY, [])
    assert isinstance(value, list)
    return list(value)
