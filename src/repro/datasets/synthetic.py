"""Framework for building deterministic synthetic Linked Datasets.

The :class:`OntologyBuilder` accumulates a class hierarchy, instances
with DBpedia-style materialised type chains, labels, and property
triples, and produces both the RDF graph and a :class:`SyntheticDataset`
that records the ground truth (who has how many instances, which
properties are significant) so tests can assert the paper's structural
claims without re-deriving them through the very code under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.namespace import Namespace
from ..rdf.terms import Literal, RDFObject, URI
from ..rdf.vocab import OWL, RDF, RDFS

__all__ = ["OntologyBuilder", "SyntheticDataset"]

_RDF_TYPE = RDF.term("type")
_RDFS_SUBCLASS = RDFS.term("subClassOf")
_RDFS_LABEL = RDFS.term("label")
_OWL_CLASS = OWL.term("Class")


def _camel_to_words(name: str) -> str:
    words: List[str] = []
    current = ""
    for char in name:
        if char.isupper() and current:
            words.append(current)
            current = char
        else:
            current += char
    if current:
        words.append(current)
    return " ".join(words).lower()


@dataclass
class SyntheticDataset:
    """A generated dataset plus its ground truth."""

    graph: Graph
    #: class URI -> parent class URI (absent for roots)
    parents: Dict[URI, URI]
    #: class URI -> direct instance count (instances whose *primary*
    #: class this is; type chains are materialised separately)
    primary_instance_counts: Dict[URI, int]
    #: class URI -> all instances carrying that type (materialised)
    instances_of: Dict[URI, Set[URI]]
    #: class URI -> ordered list of its direct subclasses
    children: Dict[URI, List[URI]]
    name: str = "synthetic"
    #: free-form ground-truth annotations filled by specific generators
    facts: Dict[str, object] = field(default_factory=dict)

    def subclasses_of(self, cls: URI, transitive: bool = True) -> Set[URI]:
        """Direct or transitive subclasses of ``cls`` (excluding itself)."""
        direct = set(self.children.get(cls, ()))
        if not transitive:
            return direct
        found: Set[URI] = set()
        frontier = list(direct)
        while frontier:
            current = frontier.pop()
            if current in found:
                continue
            found.add(current)
            frontier.extend(self.children.get(current, ()))
        return found

    def instance_count(self, cls: URI) -> int:
        """Number of instances typed (directly or via the chain) as ``cls``."""
        return len(self.instances_of.get(cls, ()))


class OntologyBuilder:
    """Accumulates a synthetic ontology + instance data deterministically."""

    def __init__(
        self,
        ontology_ns: Namespace,
        resource_ns: Namespace,
        seed: int = 42,
        name: str = "synthetic",
    ):
        self.ontology_ns = ontology_ns
        self.resource_ns = resource_ns
        self.rng = random.Random(seed)
        self.graph = Graph(name=name)
        # Generators issue tens of thousands of scattered add() calls;
        # hold the graph in bulk mode until build() so the version
        # counter (and with it statistics/plan-cache invalidation) moves
        # once per generated dataset, not once per triple.
        self._bulk = self.graph.bulk()
        self._bulk.__enter__()
        self.name = name
        self.parents: Dict[URI, URI] = {}
        self.children: Dict[URI, List[URI]] = {}
        self.classes: List[URI] = []
        self.primary_instance_counts: Dict[URI, int] = {}
        self.instances_of: Dict[URI, Set[URI]] = {}
        self._instance_serial = 0

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def add_class(
        self,
        name: str,
        parent: Optional[URI] = None,
        label: Optional[str] = None,
        declare: bool = True,
        uri: Optional[URI] = None,
    ) -> URI:
        """Declare a class, optionally under ``parent``.

        ``uri`` overrides the default ontology-namespace URI (used for
        the ``owl:Thing`` root, which lives in the OWL namespace).
        """
        cls = uri if uri is not None else self.ontology_ns.term(name)
        if cls in self.children:
            raise ValueError(f"class already declared: {name}")
        self.classes.append(cls)
        self.children[cls] = []
        if declare:
            self.graph.add(cls, _RDF_TYPE, _OWL_CLASS)
            self.graph.add(
                cls, _RDFS_LABEL, Literal(label or _camel_to_words(name), language="en")
            )
        if parent is not None:
            if parent not in self.children:
                raise ValueError(f"unknown parent class: {parent}")
            self.parents[cls] = parent
            self.children[parent].append(cls)
            self.graph.add(cls, _RDFS_SUBCLASS, parent)
        return cls

    def ancestors(self, cls: URI) -> List[URI]:
        """The chain of ancestors from ``cls``'s parent up to the root."""
        chain: List[URI] = []
        current = self.parents.get(cls)
        while current is not None:
            chain.append(current)
            current = self.parents.get(current)
        return chain

    def property_uri(self, name: str) -> URI:
        """Mint an ontology property URI."""
        return self.ontology_ns.term(name)

    # ------------------------------------------------------------------
    # Instances
    # ------------------------------------------------------------------

    def add_instances(
        self,
        cls: URI,
        count: int,
        label_prefix: Optional[str] = None,
        materialise_chain: bool = True,
    ) -> List[URI]:
        """Create ``count`` instances with primary class ``cls``.

        Each instance is typed with ``cls`` and (DBpedia-style) every
        ancestor class, and given an ``rdfs:label``.
        """
        if cls not in self.children:
            raise ValueError(f"unknown class: {cls}")
        prefix = label_prefix or cls.local_name
        chain = [cls] + (self.ancestors(cls) if materialise_chain else [])
        created: List[URI] = []
        for _ in range(count):
            self._instance_serial += 1
            instance = self.resource_ns.term(f"{prefix}_{self._instance_serial}")
            for typed in chain:
                self.graph.add(instance, _RDF_TYPE, typed)
                self.instances_of.setdefault(typed, set()).add(instance)
            self.graph.add(
                instance,
                _RDFS_LABEL,
                Literal(f"{prefix} {self._instance_serial}", language="en"),
            )
            created.append(instance)
        self.primary_instance_counts[cls] = (
            self.primary_instance_counts.get(cls, 0) + count
        )
        return created

    # ------------------------------------------------------------------
    # Property data
    # ------------------------------------------------------------------

    def cover_with_property(
        self,
        subjects: Sequence[URI],
        property_name: str,
        coverage: float,
        objects: Optional[Sequence[RDFObject]] = None,
        fanout: int = 1,
    ) -> Tuple[URI, List[URI]]:
        """Attach a property to a ``coverage`` fraction of ``subjects``.

        The covered subjects are the deterministic prefix of ``subjects``
        after a seeded shuffle, so coverage percentages are exact (within
        flooring) — tests rely on this to check the 20 % threshold logic.
        Each covered subject gets ``fanout`` values drawn from ``objects``
        (or a generated literal when ``objects`` is None).  Returns the
        property URI and the covered subjects.
        """
        if not 0.0 <= coverage <= 1.0:
            raise ValueError(f"coverage must be within [0, 1]: {coverage}")
        prop = self.property_uri(property_name)
        shuffled = list(subjects)
        self.rng.shuffle(shuffled)
        covered_count = int(len(shuffled) * coverage)
        covered = shuffled[:covered_count]
        for subject in covered:
            for index in range(fanout):
                if objects is None:
                    value: RDFObject = Literal(
                        f"{property_name} of {subject.local_name} #{index}"
                    )
                else:
                    value = objects[self.rng.randrange(len(objects))]
                self.graph.add(subject, prop, value)
        return prop, covered

    def attach_value(
        self, subject: URI, property_name: str, value: RDFObject
    ) -> URI:
        """Attach a single property value to one subject."""
        prop = self.property_uri(property_name)
        self.graph.add(subject, prop, value)
        return prop

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------

    def build(self, facts: Optional[Dict[str, object]] = None) -> SyntheticDataset:
        """Freeze into a :class:`SyntheticDataset`."""
        if self._bulk is not None:
            self._bulk.__exit__(None, None, None)
            self._bulk = None
        return SyntheticDataset(
            graph=self.graph,
            parents=dict(self.parents),
            primary_instance_counts=dict(self.primary_instance_counts),
            instances_of={cls: set(members) for cls, members in self.instances_of.items()},
            children={cls: list(kids) for cls, kids in self.children.items()},
            name=self.name,
            facts=dict(facts or {}),
        )
