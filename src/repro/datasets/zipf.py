"""Zipfian distribution helpers for the synthetic dataset generators.

Real Linked Data class and property supports are heavy-tailed; the paper
leans on this ("in DBpedia ... almost half of the classes (22) do not
have instances at all", Section 1).  The generators use these helpers to
distribute instances over filler classes and values over properties.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

__all__ = ["zipf_weights", "allocate_zipf", "pick_weighted"]

T = TypeVar("T")


def zipf_weights(count: int, exponent: float = 1.0) -> List[float]:
    """Normalised Zipf weights ``1/rank^exponent`` for ranks ``1..count``."""
    if count <= 0:
        return []
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    raw = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


def allocate_zipf(total: int, count: int, exponent: float = 1.0) -> List[int]:
    """Split ``total`` items into ``count`` Zipf-distributed integer shares.

    Shares are largest-first; rounding remainders go to the largest
    shares, and the result always sums to ``total``.
    """
    if count <= 0:
        return []
    weights = zipf_weights(count, exponent)
    shares = [int(total * weight) for weight in weights]
    deficit = total - sum(shares)
    index = 0
    while deficit > 0:
        shares[index % count] += 1
        deficit -= 1
        index += 1
    return shares


def pick_weighted(
    rng: random.Random, items: Sequence[T], weights: Sequence[float]
) -> T:
    """Pick one item according to ``weights`` using ``rng``."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    return rng.choices(list(items), weights=list(weights), k=1)[0]
