"""A YAGO-like synthetic dataset.

YAGO is the paper's second named knowledge base ("mirrors of the common
knowledge bases, such as DBpedia and YAGO", Section 4; the settings form
offers "DBpedia, YAGO, or LinkedGeoData", Section 3.1).  Its structural
signature differs from DBpedia's in ways that exercise different eLinda
code paths:

* classes use ``rdfs:Class`` (not ``owl:Class``) and the hierarchy is
  rooted in ``schema:Thing`` — the tool must honour both declaration
  vocabularies (Section 3.2's autocomplete collects "all subjects in the
  dataset of type owl:Class or rdfs:Class");
* the taxonomy is much deeper (WordNet-derived chains), stressing the
  subclass drill-down and the closure queries;
* labels are multilingual, exercising language-tag handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..rdf.namespace import Namespace
from ..rdf.terms import Literal, URI
from ..rdf.vocab import RDF, RDFS
from .synthetic import OntologyBuilder, SyntheticDataset
from .zipf import allocate_zipf

__all__ = ["YagoConfig", "generate_yago", "YAGO", "SCHEMA"]

YAGO = Namespace("http://yago-knowledge.org/resource/")
SCHEMA = Namespace("http://schema.org/")

#: Deep WordNet-style chains under schema:Thing; each entry is a chain
#: of increasingly specific classes.
_CHAINS = [
    ["CreativeWork", "Book", "Novel", "MysteryNovel"],
    ["CreativeWork", "Movie", "SilentMovie"],
    ["Organization", "Corporation", "Airline"],
    ["Organization", "EducationalOrganization", "CollegeOrUniversity"],
    ["Person", "Scientist", "Physicist", "Astrophysicist"],
    ["Person", "Politician", "HeadOfState", "President"],
    ["Person", "Artist", "Painter"],
    ["Place", "AdministrativeArea", "City", "CapitalCity"],
    ["Place", "Landform", "Mountain", "Volcano"],
    ["Event", "SportsEvent", "OlympicGames"],
    ["Product", "Vehicle", "Car", "SportsCar"],
    ["Taxon", "Animal", "Mammal", "Primate"],
]

_LANGUAGES = ["en", "de", "fr", "es", "it"]


@dataclass(frozen=True)
class YagoConfig:
    """Generator parameters for the YAGO-like dataset."""

    total_instances: int = 1200
    seed: int = 17
    languages: int = 3

    def __post_init__(self) -> None:
        if not 1 <= self.languages <= len(_LANGUAGES):
            raise ValueError(
                f"languages must be within 1..{len(_LANGUAGES)}"
            )


def generate_yago(config: Optional[YagoConfig] = None) -> SyntheticDataset:
    """Generate the synthetic YAGO-like dataset."""
    config = config or YagoConfig()
    builder = OntologyBuilder(SCHEMA, YAGO, seed=config.seed, name="yago-synthetic")
    rdfs_class = RDFS.term("Class")
    rdf_type = RDF.term("type")
    label = RDFS.term("label")

    # Root + chains; classes declared rdfs:Class (not owl:Class).
    root = builder.add_class("Thing", declare=False)
    builder.graph.add(root, rdf_type, rdfs_class)
    builder.graph.add(root, label, Literal("thing", language="en"))
    declared: Dict[str, URI] = {"Thing": root}
    leaves: List[URI] = []
    for chain in _CHAINS:
        parent = root
        for name in chain:
            cls = declared.get(name)
            if cls is None:
                cls = builder.add_class(name, parent=parent, declare=False)
                builder.graph.add(cls, rdf_type, rdfs_class)
                for language in _LANGUAGES[: config.languages]:
                    builder.graph.add(
                        cls,
                        label,
                        Literal(f"{name.lower()} ({language})", language=language),
                    )
                declared[name] = cls
            parent = cls
        leaves.append(parent)

    # Instances live at the leaves with a Zipf spread; type chains are
    # materialised all the way to schema:Thing (deep chains!).
    shares = allocate_zipf(config.total_instances, len(leaves), 1.05)
    for leaf, share in zip(leaves, shares):
        instances = builder.add_instances(leaf, max(1, share))
        builder.cover_with_property(instances, "sameAs", 0.3)
    # A few generic facts for property charts.
    scientists = sorted(
        builder.instances_of.get(declared["Scientist"], set()),
        key=lambda uri: uri.value,
    )
    cities = sorted(
        builder.instances_of.get(declared["City"], set()),
        key=lambda uri: uri.value,
    )
    if scientists and cities:
        builder.cover_with_property(
            scientists, "birthPlace", 0.6, objects=cities
        )
        builder.cover_with_property(scientists, "birthDate", 0.5)

    return builder.build(
        facts={
            "root": root,
            "classes": dict(declared),
            "leaves": list(leaves),
            "config": config,
            "max_depth": max(len(chain) for chain in _CHAINS) + 1,
        }
    )
