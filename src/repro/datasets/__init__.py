"""Deterministic synthetic Linked Datasets standing in for DBpedia,
LinkedGeoData, and the erroneous-data demo (DESIGN.md, substitution
table)."""

from .dbpedia import DBpediaConfig, OWL_THING, generate_dbpedia, recommended_scale
from .errors import inject_birthplace_errors, planted_errors
from .lgd import LGDConfig, LGDO, LGDR, generate_lgd
from .synthetic import OntologyBuilder, SyntheticDataset
from .yago import SCHEMA, YAGO, YagoConfig, generate_yago
from .zipf import allocate_zipf, pick_weighted, zipf_weights

__all__ = [
    "OntologyBuilder",
    "SyntheticDataset",
    "DBpediaConfig",
    "generate_dbpedia",
    "recommended_scale",
    "OWL_THING",
    "LGDConfig",
    "generate_lgd",
    "LGDO",
    "LGDR",
    "YagoConfig",
    "generate_yago",
    "YAGO",
    "SCHEMA",
    "inject_birthplace_errors",
    "planted_errors",
    "zipf_weights",
    "allocate_zipf",
    "pick_weighted",
]
