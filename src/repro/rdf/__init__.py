"""RDF substrate: terms, triples, indexed graph store, namespaces, and I/O.

This package implements the data model of the paper's Section 2 from
scratch: URIs **U**, literals **L**, RDF triples in ``U x U x (U ∪ L)``,
and finite RDF graphs with pattern-matching access.
"""

from .dictionary import KIND_STRIDE, TermDictionary, kind_name, kind_of_id
from .graph import Graph
from .namespace import Namespace, NamespaceManager
from .stats import GraphStatistics, statistics_for
from .ntriples import (
    NTriplesError,
    dump_ntriples,
    load_ntriples,
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
)
from .snapshot import (
    SnapshotChecksumError,
    SnapshotDictionary,
    SnapshotError,
    SnapshotFormatError,
    SnapshotGraph,
    SnapshotMagicError,
    SnapshotReadOnlyError,
    SnapshotTruncatedError,
    SnapshotVersionError,
    build_snapshot_bytes,
    open_snapshot,
    snapshot_info,
    write_snapshot,
)
from .terms import BNode, Literal, RDFObject, Subject, Term, URI
from .triple import Triple, TriplePattern
from .turtle import TurtleError, parse_turtle, serialize_turtle
from .vocab import (
    DBO,
    DBR,
    DC,
    ELINDA,
    FOAF,
    OWL,
    RDF,
    RDFS,
    XSD,
    default_namespace_manager,
)

__all__ = [
    "Term",
    "URI",
    "BNode",
    "Literal",
    "Subject",
    "RDFObject",
    "Triple",
    "TriplePattern",
    "Graph",
    "TermDictionary",
    "KIND_STRIDE",
    "kind_of_id",
    "kind_name",
    "GraphStatistics",
    "statistics_for",
    "SnapshotGraph",
    "SnapshotDictionary",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotMagicError",
    "SnapshotVersionError",
    "SnapshotChecksumError",
    "SnapshotTruncatedError",
    "SnapshotReadOnlyError",
    "build_snapshot_bytes",
    "write_snapshot",
    "open_snapshot",
    "snapshot_info",
    "Namespace",
    "NamespaceManager",
    "NTriplesError",
    "parse_ntriples",
    "parse_ntriples_line",
    "serialize_ntriples",
    "load_ntriples",
    "dump_ntriples",
    "TurtleError",
    "parse_turtle",
    "serialize_turtle",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "FOAF",
    "DC",
    "DBO",
    "DBR",
    "ELINDA",
    "default_namespace_manager",
]
