"""Well-known RDF vocabularies.

The paper relies on the standard modelling properties: ``rdf:type`` for
class membership, ``rdfs:subClassOf`` for the class hierarchy,
``owl:Class`` / ``rdfs:Class`` for class declarations, and ``rdfs:label``
for human-readable labels (Section 3.1).
"""

from __future__ import annotations

from .namespace import Namespace, NamespaceManager

__all__ = [
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "FOAF",
    "DC",
    "DBO",
    "DBR",
    "ELINDA",
    "default_namespace_manager",
]

RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
DC = Namespace("http://purl.org/dc/elements/1.1/")

#: DBpedia ontology namespace — used by the synthetic DBpedia-like dataset.
DBO = Namespace("http://dbpedia.org/ontology/")
#: DBpedia resource namespace — instances live here.
DBR = Namespace("http://dbpedia.org/resource/")
#: Namespace for eLinda-internal terms.
ELINDA = Namespace("http://elinda.technion.ac.il/ns#")

_DEFAULT_BINDINGS = {
    "rdf": RDF.base,
    "rdfs": RDFS.base,
    "owl": OWL.base,
    "xsd": XSD.base,
    "foaf": FOAF.base,
    "dc": DC.base,
    "dbo": DBO.base,
    "dbr": DBR.base,
    "elinda": ELINDA.base,
}


def default_namespace_manager() -> NamespaceManager:
    """A :class:`NamespaceManager` preloaded with the standard bindings."""
    return NamespaceManager(dict(_DEFAULT_BINDINGS))
