"""Dictionary encoding of RDF terms to dense integer IDs.

Every layer above the store — pattern scans, hash-join probes, DISTINCT
seen-sets, group keys — ultimately hashes and compares RDF terms.  Term
objects carry a cached hash, but every equality check is still a Python
method call and every composite key allocates a tuple of objects.  The
:class:`TermDictionary` interns each distinct term once and hands out a
dense ``int`` ID, so the whole execution stack can hash and compare raw
integers (C-level operations) and only *materialize* terms back at the
projection/serialisation boundary.  This is the classic dictionary
encoding of RDF stores (Virtuoso, RDF-3X, HDT) that *Efficiently
Charting RDF* relies on for interactive aggregate exploration.

ID layout
---------

IDs are partitioned by term kind into disjoint ranges of
:data:`KIND_STRIDE` each::

    URIs:      [0,              KIND_STRIDE)
    BNodes:    [KIND_STRIDE,    2 * KIND_STRIDE)
    Literals:  [2 * KIND_STRIDE, 3 * KIND_STRIDE)

so integer comparison of IDs respects the term model's cross-kind total
order (URI < BNode < Literal) even though IDs within one kind follow
interning order, not lexicographic order.  Within-kind ordering (ORDER
BY, sort keys) therefore still goes through the decoded terms.

The dictionary only ever grows: removing a triple from a graph does not
un-intern its terms, which keeps IDs stable for the lifetime of the
store — the property the executor's scan-offset continuation tokens
rely on (a token is invalidated by the graph ``version`` check whenever
triples change, but dictionary growth alone never invalidates IDs).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Tuple

from ..obs.metrics import REGISTRY
from .terms import BNode, Literal, Term, URI

__all__ = ["KIND_STRIDE", "TermDictionary", "kind_of_id", "kind_name"]

#: Width of each per-kind ID range.  2^40 terms per kind is far beyond
#: anything an in-memory store holds; the stride exists so that integer
#: ID order respects the URI < BNode < Literal cross-kind order.
KIND_STRIDE = 1 << 40

_KIND_NAMES = ("uri", "bnode", "literal")

_DICT_TERMS = REGISTRY.gauge(
    "repro_dict_terms",
    "Distinct terms interned in the dictionary, by kind",
    labelnames=("kind",),
)
_DICT_TERMS_BY_KIND = tuple(
    _DICT_TERMS.labels(kind=name) for name in _KIND_NAMES
)
_DICT_ENCODE_TOTAL = REGISTRY.counter(
    "repro_dict_encode_total",
    "Term-to-ID encodings, by outcome (hit = already interned)",
    labelnames=("outcome",),
)
_ENCODE_HIT = _DICT_ENCODE_TOTAL.labels(outcome="hit")
_ENCODE_MISS = _DICT_ENCODE_TOTAL.labels(outcome="miss")
#: Counted by the engine's decode boundaries (expression evaluation,
#: plan-root materialization) in batches — ``decode`` itself is a bare
#: list lookup so the hot loops pay no metric overhead per term.
DECODE_TOTAL = REGISTRY.counter(
    "repro_dict_decode_total",
    "Terms materialized from ID space at engine decode boundaries",
)


def kind_of_id(id: int) -> int:
    """The kind tag (0 = URI, 1 = BNode, 2 = Literal) of an ID."""
    return id // KIND_STRIDE


def kind_name(id: int) -> str:
    """Human-readable kind of an ID (``uri``/``bnode``/``literal``)."""
    return _KIND_NAMES[id // KIND_STRIDE]


class TermDictionary:
    """A bidirectional, append-only term ↔ ID mapping.

    ``encode`` interns (assigns a fresh ID on first sight), ``lookup``
    is the non-interning probe used for query constants (a constant the
    store has never seen cannot match any triple), and ``decode`` is the
    materialization direction.  Decoding returns the *identical* term
    object that was interned, so ``decode(encode(t)) is t`` for terms
    already owned by the store — late materialization allocates nothing.
    """

    __slots__ = ("_ids", "_terms", "_lock")

    def __init__(self) -> None:
        #: term -> id, across all kinds (Term hashes are kind-tagged).
        self._ids: Dict[Term, int] = {}
        #: per-kind append-only term lists; ``decode`` indexes these.
        self._terms: Tuple[List[Term], List[Term], List[Term]] = ([], [], [])
        #: guards the intern slow path only; reads are GIL-safe.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, term: Term) -> int:
        """Return the ID of ``term``, interning it on first sight."""
        id = self._ids.get(term)
        if id is not None:
            _ENCODE_HIT.inc()
            return id
        with self._lock:
            id = self._ids.get(term)
            if id is not None:
                _ENCODE_HIT.inc()
                return id
            kind = term._kind
            bucket = self._terms[kind]
            id = kind * KIND_STRIDE + len(bucket)
            bucket.append(term)
            self._ids[term] = id
            _ENCODE_MISS.inc()
            _DICT_TERMS_BY_KIND[kind].inc()
            return id

    def lookup(self, term: Term) -> Optional[int]:
        """The ID of ``term`` if it is interned, else ``None`` (no intern)."""
        return self._ids.get(term)

    def portable_id(self, id: int) -> bool:
        """Whether ``id`` survives serialisation as a raw integer.

        An in-memory dictionary is private to its graph, and every
        consumer of a token minted over that graph shares it — so every
        ID it issued is safe to ship raw.  Frozen-base stores (the mmap
        snapshot) override this: IDs minted into their process-local
        overlay must cross as term literals instead.
        """
        return True

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode(self, id: int) -> Term:
        """Materialize the term behind ``id``.

        Raises :class:`KeyError` for an ID this dictionary never issued.
        Deliberately metric-free: callers sit in the engine's hottest
        loops and account decodes in batches via :data:`DECODE_TOTAL`.
        """
        kind, offset = divmod(id, KIND_STRIDE)
        try:
            return self._terms[kind][offset]
        except (IndexError, TypeError):
            raise KeyError(f"unknown term id: {id!r}")

    def decode_triple(self, ids: Tuple[int, int, int]) -> Tuple[Term, Term, Term]:
        """Materialize an (s, p, o) ID triple in one call."""
        terms = self._terms
        s, p, o = ids
        return (
            terms[s // KIND_STRIDE][s % KIND_STRIDE],
            terms[p // KIND_STRIDE][p % KIND_STRIDE],
            terms[o // KIND_STRIDE][o % KIND_STRIDE],
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, term: object) -> bool:
        return term in self._ids

    def size_by_kind(self) -> Dict[str, int]:
        """Distinct interned terms per kind name."""
        return {
            name: len(bucket)
            for name, bucket in zip(_KIND_NAMES, self._terms)
        }

    def terms(self) -> Iterator[Term]:
        """All interned terms, in ID order (kind-major, then interning order)."""
        for bucket in self._terms:
            yield from bucket

    # ------------------------------------------------------------------
    # Stable export order
    # ------------------------------------------------------------------
    #
    # Snapshot builds (:mod:`repro.rdf.snapshot`) serialise the dictionary
    # byte-for-byte, so the export surface must promise a *stable* order:
    # two exports of the same dictionary state are identical, and the
    # position of a term in the export determines its ID.

    def export_kind(self, kind: int) -> Tuple[Term, ...]:
        """The terms of one kind in ID order, as an immutable snapshot.

        Index ``i`` of the returned tuple holds the term whose ID is
        ``kind * KIND_STRIDE + i``; the order is the interning order and
        never changes for the lifetime of the dictionary (the store is
        append-only), so repeated exports of the same state are
        element-for-element identical.  This is the contract snapshot
        serialisation relies on for byte-for-byte deterministic builds.
        """
        with self._lock:
            return tuple(self._terms[kind])

    def export_ids(self) -> Iterator[Tuple[int, Term]]:
        """All ``(id, term)`` pairs in ascending ID order (stable)."""
        for kind in range(len(self._terms)):
            base = kind * KIND_STRIDE
            for offset, term in enumerate(self.export_kind(kind)):
                yield base + offset, term

    def __repr__(self) -> str:
        sizes = self.size_by_kind()
        return (
            f"<TermDictionary {len(self)} terms "
            f"({sizes['uri']} uri, {sizes['bnode']} bnode, "
            f"{sizes['literal']} literal)>"
        )
