"""Turtle parsing and serialisation (the commonly used subset).

Supported on input: ``@prefix``/``PREFIX`` and ``@base``/``BASE``
declarations, qnames, ``a``, predicate lists (``;``), object lists
(``,``), string/numeric/boolean literal shorthands, language tags and
datatypes, blank node labels and anonymous blank nodes ``[ ... ]``.
RDF collections ``( ... )`` are not supported and raise a clear error.

The serialiser groups triples by subject and emits qnames using a
:class:`repro.rdf.namespace.NamespaceManager`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .graph import Graph
from .namespace import NamespaceManager
from .terms import (
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    BNode,
    Literal,
    RDFObject,
    Subject,
    URI,
)
from .triple import Triple
from .vocab import RDF, default_namespace_manager

__all__ = ["TurtleError", "parse_turtle", "serialize_turtle"]

_RDF_TYPE = RDF.term("type")


class TurtleError(ValueError):
    """Raised on malformed Turtle input."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


class _Scanner:
    """Character cursor with line/column tracking over a Turtle document."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def location(self) -> Tuple[int, int]:
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str) -> TurtleError:
        line, column = self.location()
        return TurtleError(message, line, column)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def skip_ws(self) -> None:
        while not self.at_end():
            char = self.peek()
            if char in " \t\r\n":
                self.advance()
            elif char == "#":
                end = self.text.find("\n", self.pos)
                self.pos = len(self.text) if end < 0 else end
            else:
                return

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.advance()

    def match_keyword(self, keyword: str) -> bool:
        """Case-insensitive keyword match at the cursor, consuming it."""
        end = self.pos + len(keyword)
        if self.text[self.pos : end].lower() != keyword.lower():
            return False
        following = self.text[end : end + 1]
        if following and (following.isalnum() or following == "_"):
            return False
        self.pos = end
        return True


_LOCAL_CHARS = set("_-.%")


class _TurtleParser:
    def __init__(self, text: str, base: str = ""):
        self.scanner = _Scanner(text)
        self.prefixes: Dict[str, str] = {}
        self.base = base
        self.triples: List[Triple] = []
        self._bnode_count = 0

    def parse(self) -> List[Triple]:
        scanner = self.scanner
        scanner.skip_ws()
        while not scanner.at_end():
            if scanner.peek() == "@":
                self._parse_at_directive()
            elif scanner.match_keyword("PREFIX"):
                self._parse_prefix(sparql_style=True)
            elif scanner.match_keyword("BASE"):
                self._parse_base(sparql_style=True)
            else:
                self._parse_statement()
            scanner.skip_ws()
        return self.triples

    # ------------------------------------------------------------------
    # Directives
    # ------------------------------------------------------------------

    def _parse_at_directive(self) -> None:
        scanner = self.scanner
        scanner.expect("@")
        if scanner.match_keyword("prefix"):
            self._parse_prefix(sparql_style=False)
        elif scanner.match_keyword("base"):
            self._parse_base(sparql_style=False)
        else:
            raise scanner.error("unknown @-directive")

    def _parse_prefix(self, sparql_style: bool) -> None:
        scanner = self.scanner
        scanner.skip_ws()
        prefix = self._read_prefix_name()
        scanner.expect(":")
        scanner.skip_ws()
        uri = self._read_uri_ref()
        self.prefixes[prefix] = uri
        if not sparql_style:
            scanner.skip_ws()
            scanner.expect(".")

    def _parse_base(self, sparql_style: bool) -> None:
        scanner = self.scanner
        scanner.skip_ws()
        self.base = self._read_uri_ref()
        if not sparql_style:
            scanner.skip_ws()
            scanner.expect(".")

    def _read_prefix_name(self) -> str:
        scanner = self.scanner
        start = scanner.pos
        while not scanner.at_end() and (
            scanner.peek().isalnum() or scanner.peek() in "_-."
        ):
            scanner.advance()
        return scanner.text[start : scanner.pos]

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_statement(self) -> None:
        scanner = self.scanner
        subject = self._parse_subject()
        scanner.skip_ws()
        # "[ p o ] ." with no further predicates is legal Turtle.
        if scanner.peek() == "." and isinstance(subject, BNode):
            scanner.advance()
            return
        self._parse_predicate_object_list(subject)
        scanner.skip_ws()
        scanner.expect(".")

    def _parse_subject(self) -> Subject:
        scanner = self.scanner
        char = scanner.peek()
        if char == "<":
            return URI(self._read_uri_ref())
        if char == "_":
            return self._read_bnode_label()
        if char == "[":
            return self._parse_anon_bnode()
        if char == "(":
            raise scanner.error("RDF collections '(...)' are not supported")
        return self._read_qname()

    def _parse_predicate_object_list(self, subject: Subject) -> None:
        scanner = self.scanner
        while True:
            scanner.skip_ws()
            predicate = self._parse_predicate()
            while True:
                scanner.skip_ws()
                obj = self._parse_object()
                self.triples.append(Triple(subject, predicate, obj))
                scanner.skip_ws()
                if scanner.peek() == ",":
                    scanner.advance()
                    continue
                break
            if scanner.peek() == ";":
                scanner.advance()
                scanner.skip_ws()
                # Allow trailing ';' before '.' or ']'.
                if scanner.peek() in ".]":
                    return
                continue
            return

    def _parse_predicate(self) -> URI:
        scanner = self.scanner
        if scanner.peek() == "<":
            return URI(self._read_uri_ref())
        if scanner.peek() == "a" and not (
            scanner.peek(1).isalnum() or scanner.peek(1) in "_:-."
        ):
            scanner.advance()
            return _RDF_TYPE
        term = self._read_qname()
        return term

    def _parse_object(self) -> RDFObject:
        scanner = self.scanner
        char = scanner.peek()
        if char == "<":
            return URI(self._read_uri_ref())
        if char == "_":
            return self._read_bnode_label()
        if char == "[":
            return self._parse_anon_bnode()
        if char == "(":
            raise scanner.error("RDF collections '(...)' are not supported")
        if char in "\"'":
            return self._read_string_literal()
        if char.isdigit() or char in "+-" or (
            char == "." and scanner.peek(1).isdigit()
        ):
            return self._read_numeric_literal()
        if scanner.match_keyword("true"):
            return Literal("true", datatype=XSD_BOOLEAN)
        if scanner.match_keyword("false"):
            return Literal("false", datatype=XSD_BOOLEAN)
        return self._read_qname()

    def _parse_anon_bnode(self) -> BNode:
        scanner = self.scanner
        scanner.expect("[")
        self._bnode_count += 1
        node = BNode(f"anon{self._bnode_count}")
        scanner.skip_ws()
        if scanner.peek() != "]":
            self._parse_predicate_object_list(node)
            scanner.skip_ws()
        scanner.expect("]")
        return node

    # ------------------------------------------------------------------
    # Terms
    # ------------------------------------------------------------------

    def _read_uri_ref(self) -> str:
        scanner = self.scanner
        scanner.expect("<")
        end = scanner.text.find(">", scanner.pos)
        if end < 0:
            raise scanner.error("unterminated URI")
        raw = scanner.text[scanner.pos : end]
        scanner.pos = end + 1
        if raw.startswith(("http://", "https://", "urn:", "file://", "mailto:")):
            return raw
        if self.base:
            return self.base + raw
        return raw

    def _read_bnode_label(self) -> BNode:
        scanner = self.scanner
        scanner.expect("_")
        scanner.expect(":")
        start = scanner.pos
        while not scanner.at_end() and (
            scanner.peek().isalnum() or scanner.peek() in "_-."
        ):
            scanner.advance()
        if scanner.pos == start:
            raise scanner.error("empty blank node label")
        return BNode(scanner.text[start : scanner.pos])

    def _read_qname(self) -> URI:
        scanner = self.scanner
        start = scanner.pos
        while not scanner.at_end() and (
            scanner.peek().isalnum() or scanner.peek() in "_-."
        ):
            scanner.advance()
        prefix = scanner.text[start : scanner.pos]
        if scanner.peek() != ":":
            raise scanner.error(f"expected qname, found {prefix!r}")
        scanner.advance()
        local_start = scanner.pos
        while not scanner.at_end() and (
            scanner.peek().isalnum() or scanner.peek() in _LOCAL_CHARS
        ):
            scanner.advance()
        local = scanner.text[local_start : scanner.pos]
        # A trailing '.' belongs to the statement terminator, not the name.
        while local.endswith("."):
            local = local[:-1]
            scanner.pos -= 1
        base = self.prefixes.get(prefix)
        if base is None:
            raise scanner.error(f"unknown prefix: {prefix!r}")
        return URI(base + local)

    def _read_string_literal(self) -> Literal:
        scanner = self.scanner
        quote = scanner.peek()
        long_quote = scanner.text.startswith(quote * 3, scanner.pos)
        if long_quote:
            scanner.advance(3)
            end = scanner.text.find(quote * 3, scanner.pos)
            if end < 0:
                raise scanner.error("unterminated long string")
            lexical = scanner.text[scanner.pos : end]
            scanner.pos = end + 3
        else:
            scanner.advance()
            chars: List[str] = []
            while True:
                if scanner.at_end():
                    raise scanner.error("unterminated string")
                char = scanner.peek()
                if char == quote:
                    scanner.advance()
                    break
                if char == "\\":
                    scanner.advance()
                    esc = scanner.peek()
                    scanner.advance()
                    mapping = {
                        "n": "\n",
                        "r": "\r",
                        "t": "\t",
                        "\\": "\\",
                        '"': '"',
                        "'": "'",
                        "b": "\b",
                        "f": "\f",
                    }
                    if esc in mapping:
                        chars.append(mapping[esc])
                    elif esc == "u":
                        chars.append(chr(int(scanner.text[scanner.pos : scanner.pos + 4], 16)))
                        scanner.advance(4)
                    elif esc == "U":
                        chars.append(chr(int(scanner.text[scanner.pos : scanner.pos + 8], 16)))
                        scanner.advance(8)
                    else:
                        raise scanner.error(f"unknown escape: \\{esc}")
                else:
                    chars.append(char)
                    scanner.advance()
            lexical = "".join(chars)
        if scanner.peek() == "@":
            scanner.advance()
            start = scanner.pos
            while not scanner.at_end() and (
                scanner.peek().isalnum() or scanner.peek() == "-"
            ):
                scanner.advance()
            return Literal(lexical, language=scanner.text[start : scanner.pos])
        if scanner.text.startswith("^^", scanner.pos):
            scanner.advance(2)
            if scanner.peek() == "<":
                datatype = self._read_uri_ref()
            else:
                datatype = self._read_qname().value
            return Literal(lexical, datatype=datatype)
        return Literal(lexical)

    def _read_numeric_literal(self) -> Literal:
        scanner = self.scanner
        start = scanner.pos
        if scanner.peek() in "+-":
            scanner.advance()
        saw_dot = saw_exp = False
        while not scanner.at_end():
            char = scanner.peek()
            if char.isdigit():
                scanner.advance()
            elif char == "." and not saw_dot and not saw_exp and scanner.peek(1).isdigit():
                saw_dot = True
                scanner.advance()
            elif char in "eE" and not saw_exp:
                saw_exp = True
                scanner.advance()
                if scanner.peek() in "+-":
                    scanner.advance()
            else:
                break
        lexical = scanner.text[start : scanner.pos]
        if saw_exp:
            return Literal(lexical, datatype=XSD_DOUBLE)
        if saw_dot:
            return Literal(lexical, datatype=XSD_DECIMAL)
        return Literal(lexical, datatype=XSD_INTEGER)


def parse_turtle(text: str, base: str = "") -> Graph:
    """Parse a Turtle document into a new :class:`Graph`."""
    parser = _TurtleParser(text, base=base)
    graph = Graph()
    graph.update(parser.parse())
    return graph


def _format_term(
    term: RDFObject, manager: NamespaceManager
) -> str:
    if isinstance(term, URI):
        if term == _RDF_TYPE:
            return "a"
        return manager.qname_or_n3(term)
    return term.n3()


def serialize_turtle(
    graph_or_triples: Graph | Iterable[Triple],
    manager: Optional[NamespaceManager] = None,
) -> str:
    """Serialise to Turtle, grouping by subject with ``;``/``,`` shorthand."""
    if manager is None:
        manager = default_namespace_manager()
    triples = list(
        graph_or_triples.triples()
        if isinstance(graph_or_triples, Graph)
        else graph_or_triples
    )
    by_subject: Dict[Subject, Dict[URI, List[RDFObject]]] = {}
    for triple in triples:
        by_subject.setdefault(triple.subject, {}).setdefault(
            triple.predicate, []
        ).append(triple.object)

    used_namespaces = set()
    for triple in triples:
        for term in triple:
            if isinstance(term, URI):
                qname = manager.qname(term)
                if qname:
                    used_namespaces.add(qname.split(":", 1)[0])

    lines: List[str] = []
    for prefix, namespace in manager:
        if prefix in used_namespaces:
            lines.append(f"@prefix {prefix}: <{namespace}> .")
    if lines:
        lines.append("")

    for subject in sorted(by_subject, key=lambda term: term.sort_key()):
        subject_text = (
            manager.qname_or_n3(subject) if isinstance(subject, URI) else subject.n3()
        )
        predicate_parts: List[str] = []
        predicates = sorted(by_subject[subject], key=lambda term: term.sort_key())
        # rdf:type first, as conventional in Turtle output.
        if _RDF_TYPE in by_subject[subject]:
            predicates.remove(_RDF_TYPE)
            predicates.insert(0, _RDF_TYPE)
        for predicate in predicates:
            objects = sorted(
                by_subject[subject][predicate], key=lambda term: term.sort_key()
            )
            object_text = ", ".join(_format_term(obj, manager) for obj in objects)
            predicate_parts.append(
                f"{_format_term(predicate, manager)} {object_text}"
            )
        joined = " ;\n    ".join(predicate_parts)
        lines.append(f"{subject_text} {joined} .")
    return "\n".join(lines) + "\n"
