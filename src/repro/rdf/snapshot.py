"""Persistent, memory-mapped snapshot store with zero-copy boot.

The in-memory :class:`~repro.rdf.graph.Graph` rebuilds its
:class:`~repro.rdf.dictionary.TermDictionary` and its three nested-dict
indexes from text on every boot — minutes of parsing and interning at
millions of triples.  This module serialises both into a single
versioned snapshot file of packed little-endian integer arrays (the
HDT-style layout sage-engine inherits from its database backends) and
opens it **zero-copy** via ``mmap``: boot is O(1) — a 64-byte header
check plus a section table — and every triple pattern is answered by
binary search over flat sorted ``u64`` arrays, faulting in only the
pages a query actually touches.

The byte-level format — header, sections, alignment, endianness,
checksum, and a worked hex example — is specified in
``docs/SNAPSHOT_FORMAT.md``; a test parses the spec's example bytes to
keep the document honest.

The storage-backend seam
------------------------

:class:`SnapshotGraph` plugs in underneath the whole engine because the
layers above the store depend only on a narrow protocol, never on the
in-memory ``Graph``'s nested dicts:

- ``triples_ids(s, p, o)`` / ``count_ids`` — the ID-plane pattern
  matcher the physical operators execute on;
- ``dictionary`` — ``encode`` / ``lookup`` / ``decode`` /
  ``decode_triple``;
- ``version`` — the invalidation signal for continuation tokens, the
  plan cache, statistics, and the HVS (constant ``0`` here: a snapshot
  is immutable, so suspended pages stay resumable forever);
- ``statistics()`` — the optimizer's cardinality summary (precomputed
  at build time, O(1) at open);
- the decoding term-plane wrappers (``triples``, ``subjects``, ...)
  the recursive evaluator and the explorer use.

Because both stores enumerate every pattern in **sorted ID order**
(:meth:`Graph.triples_ids` walks its dict levels sorted; the snapshot's
arrays are stored sorted), execution over a snapshot is row-and-order
identical to the in-memory store — one-shot, paged, and across
continuation-token suspensions — with no code changes above the
storage layer.

Writes are not supported: every mutating method raises
:class:`SnapshotReadOnlyError`.  ``SnapshotGraph.copy()`` materialises
an ordinary mutable :class:`Graph` as the escape hatch.
"""

from __future__ import annotations

import mmap
import os
import struct
import sys
import threading
import time
import zlib
from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..obs.metrics import REGISTRY
from .dictionary import KIND_STRIDE
from .graph import (
    _LOOKUP_FULL_SCAN,
    _LOOKUP_OSP,
    _LOOKUP_POS,
    _LOOKUP_SPO,
    _UNKNOWN,
    Graph,
)
from .stats import GraphStatistics
from .terms import BNode, Literal, RDFObject, Subject, Term, URI
from .triple import Triple, TriplePattern

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "HEADER_SIZE",
    "SECTION_COUNT",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotMagicError",
    "SnapshotVersionError",
    "SnapshotChecksumError",
    "SnapshotTruncatedError",
    "SnapshotReadOnlyError",
    "SnapshotStaleError",
    "SnapshotDictionary",
    "SnapshotGraph",
    "build_snapshot_bytes",
    "write_snapshot",
    "open_snapshot",
    "snapshot_info",
]

#: File magic: identifies an eLinda snapshot, format generation 01.
MAGIC = b"ELSNAP01"
#: On-disk format version; bumped on any incompatible layout change.
FORMAT_VERSION = 1
#: Fixed-size header: magic, version, flags, payload length, CRC-32,
#: triple count, and per-kind term counts.  See docs/SNAPSHOT_FORMAT.md.
HEADER_SIZE = 64
_HEADER_FMT = "<8sIIQIIQQQQ"
assert struct.calcsize(_HEADER_FMT) == HEADER_SIZE

#: Sections, in file order.  Per term kind (URI, BNode, Literal): the
#: offsets array into the string heap, the heap blob, and the
#: lexicographic sort index used for term -> ID lookup.  Then the three
#: triple orderings and the precomputed statistics summary.
SECTION_COUNT = 13
(
    _SEC_URI_OFFSETS,
    _SEC_URI_HEAP,
    _SEC_URI_SORTED,
    _SEC_BNODE_OFFSETS,
    _SEC_BNODE_HEAP,
    _SEC_BNODE_SORTED,
    _SEC_LIT_OFFSETS,
    _SEC_LIT_HEAP,
    _SEC_LIT_SORTED,
    _SEC_SPO,
    _SEC_POS,
    _SEC_OSP,
    _SEC_STATS,
) = range(SECTION_COUNT)

_SECTION_TABLE_SIZE = SECTION_COUNT * 16
_KIND_NAMES = ("uri", "bnode", "literal")

_SNAP_BUILD_SECONDS = REGISTRY.gauge(
    "repro_snapshot_build_seconds",
    "Wall seconds of the last snapshot build (serialize + checksum + write)",
)
_SNAP_FILE_BYTES = REGISTRY.gauge(
    "repro_snapshot_file_bytes",
    "Size in bytes of the last snapshot file built or opened",
)
_SNAP_OPEN_SECONDS = REGISTRY.gauge(
    "repro_snapshot_open_seconds",
    "Wall seconds of the last snapshot open (mmap + header/section parse)",
)
_SNAP_RESIDENT_BYTES = REGISTRY.gauge(
    "repro_snapshot_resident_bytes",
    "Process RSS sampled at the last snapshot open or resident_bytes() "
    "call — a page-fault proxy for how much of the mapping is actually "
    "touched",
)


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------


class SnapshotError(Exception):
    """Base class for all snapshot-store errors."""


class SnapshotFormatError(SnapshotError, ValueError):
    """The file is not a well-formed snapshot (structural corruption)."""


class SnapshotMagicError(SnapshotFormatError):
    """The file does not start with the snapshot magic bytes."""


class SnapshotVersionError(SnapshotFormatError):
    """The snapshot's format version is not supported by this reader."""


class SnapshotChecksumError(SnapshotFormatError):
    """The payload checksum does not match the header (bit rot / torn
    write).  Raised at open time, never as a silently wrong answer."""


class SnapshotTruncatedError(SnapshotFormatError):
    """The file is shorter than its header or section table claims."""


class SnapshotReadOnlyError(SnapshotError, TypeError):
    """A mutating operation was attempted on an immutable snapshot."""


class SnapshotStaleError(SnapshotError):
    """The on-disk snapshot no longer matches the file this graph
    mapped at open time (replaced, truncated, or deleted underneath a
    live mmap).  Raised by :meth:`SnapshotGraph.ensure_fresh`; pool
    worker heartbeats poll :meth:`SnapshotGraph.snapshot_stale` so a
    swapped file is caught at the next health check instead of being
    served as silently wrong pages."""


# ----------------------------------------------------------------------
# Term record codec (the string heap)
# ----------------------------------------------------------------------

_LIT_PLAIN = 0
_LIT_DATATYPE = 1
_LIT_LANGUAGE = 2


def _serialize_term(term: Term) -> bytes:
    """One heap record.  URIs and BNodes are raw UTF-8 (offsets delimit
    them); literals are ``u8 flags + u32 aux_len + aux + lexical``.

    The record bytes are a *total order key*: two distinct terms of the
    same kind always serialise to distinct bytes, which is what the
    sort-index binary search (`SnapshotDictionary.lookup`) relies on.
    """
    kind = term._kind
    if kind == 0:
        return term.value.encode("utf-8")
    if kind == 1:
        return term.id.encode("utf-8")
    if term.language is not None:
        flags, aux = _LIT_LANGUAGE, term.language
    elif term.datatype is not None:
        flags, aux = _LIT_DATATYPE, term.datatype
    else:
        flags, aux = _LIT_PLAIN, ""
    aux_bytes = aux.encode("utf-8")
    return (
        struct.pack("<BI", flags, len(aux_bytes))
        + aux_bytes
        + term.lexical.encode("utf-8")
    )


def _parse_term(kind: int, record: bytes) -> Term:
    """Inverse of :func:`_serialize_term`."""
    if kind == 0:
        return URI(record.decode("utf-8"))
    if kind == 1:
        return BNode(record.decode("utf-8"))
    if len(record) < 5:
        raise SnapshotFormatError(
            f"literal heap record too short ({len(record)} bytes)"
        )
    flags = record[0]
    (aux_len,) = struct.unpack_from("<I", record, 1)
    if 5 + aux_len > len(record):
        raise SnapshotFormatError("literal heap record overruns its bounds")
    aux = record[5 : 5 + aux_len].decode("utf-8")
    lexical = record[5 + aux_len :].decode("utf-8")
    if flags == _LIT_PLAIN:
        return Literal(lexical)
    if flags == _LIT_DATATYPE:
        return Literal(lexical, datatype=aux)
    if flags == _LIT_LANGUAGE:
        return Literal(lexical, language=aux)
    raise SnapshotFormatError(f"unknown literal flags byte: {flags}")


# ----------------------------------------------------------------------
# u64 views (zero-copy on little-endian hosts)
# ----------------------------------------------------------------------


class _StructU64View:
    """Portable fallback for big-endian hosts: little-endian u64 reads
    through ``struct`` instead of a native memoryview cast."""

    __slots__ = ("_buf", "_n")

    def __init__(self, buf):
        self._buf = buf
        self._n = len(buf) // 8

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._n)
            return _StructU64View(self._buf[start * 8 : stop * 8])
        return struct.unpack_from("<Q", self._buf, index * 8)[0]

    def tolist(self) -> List[int]:
        return list(struct.unpack(f"<{self._n}Q", bytes(self._buf)))


def _u64_view(buf):
    """A random-access u64 little-endian view over ``buf`` (zero-copy
    ``memoryview.cast`` where the host is little-endian)."""
    if sys.byteorder == "little":
        return memoryview(buf).cast("Q")
    return _StructU64View(buf)


def _le_bytes(arr: array) -> bytes:
    """``array('Q')`` to little-endian bytes regardless of host order."""
    if sys.byteorder != "little":
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr.tobytes()


# ----------------------------------------------------------------------
# Sorted-array search
# ----------------------------------------------------------------------


def _prefix_range(view, n: int, prefix) -> Tuple[int, int]:
    """The ``[lo, hi)`` row range whose leading columns equal ``prefix``.

    Two binary searches over a sorted ``n x 3`` u64 array; O(log n)
    u64 probes, no rows materialised.  An impossible prefix (e.g. the
    ``-1`` unknown-constant sentinel) yields an empty range.

    The one- and two-column cases are unrolled: this is the per-probe
    cost of every bound-pattern lookup the join operators issue, so a
    helper call per compared column is measurable on large graphs.
    """
    k = len(prefix)
    if k == 1:
        want = prefix[0]
        lo, hi = 0, n
        while lo < hi:
            mid = (lo + hi) >> 1
            if view[3 * mid] < want:
                lo = mid + 1
            else:
                hi = mid
        first, hi = lo, n
        while lo < hi:
            mid = (lo + hi) >> 1
            if want < view[3 * mid]:
                hi = mid
            else:
                lo = mid + 1
        return first, lo
    if k == 2:
        w0, w1 = prefix
        lo, hi = 0, n
        while lo < hi:
            mid = (lo + hi) >> 1
            base = 3 * mid
            h0 = view[base]
            if h0 < w0 or (h0 == w0 and view[base + 1] < w1):
                lo = mid + 1
            else:
                hi = mid
        first, hi = lo, n
        while lo < hi:
            mid = (lo + hi) >> 1
            base = 3 * mid
            h0 = view[base]
            if w0 < h0 or (w0 == h0 and w1 < view[base + 1]):
                hi = mid
            else:
                lo = mid + 1
        return first, lo
    lo, hi = 0, n
    while lo < hi:
        mid = (lo + hi) >> 1
        base = 3 * mid
        row = (view[base], view[base + 1], view[base + 2])
        if row < prefix:
            lo = mid + 1
        else:
            hi = mid
    first, hi = lo, n
    while lo < hi:
        mid = (lo + hi) >> 1
        base = 3 * mid
        row = (view[base], view[base + 1], view[base + 2])
        if prefix < row:
            hi = mid
        else:
            lo = mid + 1
    return first, lo


_CHUNK_ROWS = 1024

#: Per-ordering cap on memoised prefix ranges (entries are two ints;
#: the cache is dropped wholesale when full — the next probes refill
#: it with whatever the current workload is actually touching).
_RANGE_CACHE_LIMIT = 1 << 16


def _iter_rows(view, lo: int, hi: int, a: int = 0, b: int = 1, c: int = 2):
    """Yield rows ``[lo, hi)`` of a 3-column u64 view as ``(s, p, o)``.

    ``(a, b, c)`` maps storage columns back to subject/predicate/object
    for the permuted orderings (POS stores ``(p, o, s)``, OSP stores
    ``(o, s, p)``).  Rows are pulled through ``tolist()`` in chunks and
    re-tupled with strided slices + ``zip``, so the per-row cost is
    C-level — no Python-level indexing per column.
    """
    for start in range(lo, hi, _CHUNK_ROWS):
        stop = min(hi, start + _CHUNK_ROWS)
        vals = view[3 * start : 3 * stop].tolist()
        yield from zip(vals[a::3], vals[b::3], vals[c::3])


# ----------------------------------------------------------------------
# Building
# ----------------------------------------------------------------------


def build_snapshot_bytes(graph) -> bytes:
    """Serialise ``graph`` (dictionary + indexes + statistics) to the
    snapshot byte format.

    Deterministic byte-for-byte: the dictionary is exported in its
    stable ID order (:meth:`TermDictionary.export_kind`), the triple
    arrays are sorted, and the statistics rows are emitted in ascending
    ID order — building the same graph state twice yields identical
    files (asserted by tests and the ``snapshot --self-test``).
    """
    dictionary = graph.dictionary
    sections: List[bytes] = [b""] * SECTION_COUNT
    counts = []
    for kind in (0, 1, 2):
        terms = dictionary.export_kind(kind)
        counts.append(len(terms))
        records = [_serialize_term(term) for term in terms]
        offsets = array("Q", [0])
        heap = bytearray()
        position = 0
        for record in records:
            heap += record
            position += len(record)
            offsets.append(position)
        order = sorted(range(len(records)), key=records.__getitem__)
        sections[3 * kind + 0] = _le_bytes(offsets)
        sections[3 * kind + 1] = bytes(heap)
        sections[3 * kind + 2] = _le_bytes(array("Q", order))

    rows = list(graph.triples_ids())
    rows.sort()
    sections[_SEC_SPO] = _pack_rows(rows, 0, 1, 2)
    rows.sort(key=_pos_key)
    sections[_SEC_POS] = _pack_rows(rows, 1, 2, 0)
    rows.sort(key=_osp_key)
    sections[_SEC_OSP] = _pack_rows(rows, 2, 0, 1)
    triple_count = len(rows)
    del rows

    sections[_SEC_STATS] = _pack_stats(graph.statistics(), dictionary)

    body = bytearray()
    entries = []
    cursor = HEADER_SIZE + _SECTION_TABLE_SIZE
    for data in sections:
        pad = (-cursor) % 8
        body += b"\x00" * pad
        cursor += pad
        entries.append((cursor, len(data)))
        body += data
        cursor += len(data)
    table = b"".join(struct.pack("<QQ", off, ln) for off, ln in entries)
    payload = table + bytes(body)
    checksum = zlib.crc32(payload) & 0xFFFFFFFF
    header = struct.pack(
        _HEADER_FMT,
        MAGIC,
        FORMAT_VERSION,
        0,
        len(payload),
        checksum,
        0,
        triple_count,
        counts[0],
        counts[1],
        counts[2],
    )
    return header + payload


def _pos_key(row):
    return (row[1], row[2], row[0])


def _osp_key(row):
    return (row[2], row[0], row[1])


def _pack_rows(rows, a: int, b: int, c: int) -> bytes:
    packed = array("Q")
    append = packed.append
    for row in rows:
        append(row[a])
        append(row[b])
        append(row[c])
    return _le_bytes(packed)


def _pack_stats(stats: GraphStatistics, dictionary) -> bytes:
    """The precomputed statistics summary, keyed by term IDs and sorted
    by ID for determinism."""
    lookup = dictionary.lookup
    predicate_rows = sorted(
        (
            lookup(predicate),
            count,
            stats.predicate_subjects.get(predicate, 0),
            stats.predicate_objects.get(predicate, 0),
        )
        for predicate, count in stats.predicate_triples.items()
    )
    class_rows = sorted(
        (lookup(cls), count) for cls, count in stats.class_instances.items()
    )
    packed = array(
        "Q",
        [
            stats.total_triples,
            stats.distinct_subjects,
            stats.distinct_objects,
            len(predicate_rows),
        ],
    )
    for row in predicate_rows:
        packed.extend(row)
    packed.append(len(class_rows))
    for row in class_rows:
        packed.extend(row)
    return _le_bytes(packed)


def write_snapshot(graph, path: str) -> int:
    """Build and atomically write a snapshot of ``graph`` to ``path``.

    Returns the file size in bytes.  The write goes through a ``.tmp``
    sibling and an ``os.replace`` so a crashed build never leaves a
    half-written file where a reader expects a snapshot.
    """
    started = time.perf_counter()
    data = build_snapshot_bytes(graph)
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _SNAP_BUILD_SECONDS.set(time.perf_counter() - started)
    _SNAP_FILE_BYTES.set(len(data))
    return len(data)


# ----------------------------------------------------------------------
# Opening
# ----------------------------------------------------------------------


def _process_rss_bytes() -> int:
    """Resident set size of this process (0 where /proc is absent)."""
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return 0


def _parse_header(buffer) -> Tuple[int, int, int, int, int, int]:
    """Validate the fixed header; returns ``(payload_len, checksum,
    triple_count, n_uri, n_bnode, n_literal)``."""
    if len(buffer) < HEADER_SIZE:
        raise SnapshotTruncatedError(
            f"file is {len(buffer)} bytes; the header alone is {HEADER_SIZE}"
        )
    (
        magic,
        version,
        _flags,
        payload_len,
        checksum,
        _reserved,
        triple_count,
        n_uri,
        n_bnode,
        n_literal,
    ) = struct.unpack_from(_HEADER_FMT, buffer, 0)
    if magic != MAGIC:
        raise SnapshotMagicError(
            f"not a snapshot file: magic {bytes(magic)!r} != {MAGIC!r}"
        )
    if version != FORMAT_VERSION:
        raise SnapshotVersionError(
            f"unsupported snapshot format version {version} "
            f"(this reader speaks {FORMAT_VERSION})"
        )
    if HEADER_SIZE + payload_len != len(buffer):
        raise SnapshotTruncatedError(
            f"header promises {HEADER_SIZE + payload_len} bytes, "
            f"file has {len(buffer)}"
        )
    return payload_len, checksum, triple_count, n_uri, n_bnode, n_literal


def _parse_sections(buffer, counts: Sequence[int], triple_count: int):
    """Validate the section table and every section's declared size;
    returns the list of per-section memoryviews."""
    view = memoryview(buffer)
    total = len(buffer)
    sections = []
    for index in range(SECTION_COUNT):
        offset, length = struct.unpack_from(
            "<QQ", buffer, HEADER_SIZE + 16 * index
        )
        if offset % 8:
            raise SnapshotFormatError(
                f"section {index} starts at unaligned offset {offset}"
            )
        if offset < HEADER_SIZE + _SECTION_TABLE_SIZE or offset + length > total:
            raise SnapshotTruncatedError(
                f"section {index} [{offset}, {offset + length}) overruns "
                f"the {total}-byte file"
            )
        sections.append(view[offset : offset + length])
    for kind, n in enumerate(counts):
        if len(sections[3 * kind + 0]) != (n + 1) * 8:
            raise SnapshotFormatError(
                f"{_KIND_NAMES[kind]} offsets section does not hold "
                f"{n + 1} u64 entries"
            )
        if len(sections[3 * kind + 2]) != n * 8:
            raise SnapshotFormatError(
                f"{_KIND_NAMES[kind]} sort index does not hold {n} entries"
            )
    for section_id in (_SEC_SPO, _SEC_POS, _SEC_OSP):
        if len(sections[section_id]) != triple_count * 24:
            raise SnapshotFormatError(
                f"triple section {section_id} does not hold "
                f"{triple_count} rows"
            )
    if len(sections[_SEC_STATS]) % 8 or len(sections[_SEC_STATS]) < 40:
        raise SnapshotFormatError("statistics section is malformed")
    return sections


# ----------------------------------------------------------------------
# The read-only dictionary
# ----------------------------------------------------------------------


class SnapshotDictionary:
    """Term ↔ ID mapping over the snapshot's mmap'd string heap.

    Nothing is materialised at open: ``decode`` parses a heap record on
    first touch and memoises it (so repeated decodes return the
    identical object — late materialisation stays allocation-free), and
    ``lookup`` binary-searches the on-disk sort index with at most
    O(log n) record comparisons, memoising hits.

    The base ID space is frozen, but ``encode`` still works: a term the
    snapshot has never seen (a query constant, a path endpoint) is
    interned into a small in-memory *overlay* whose IDs start right
    after the per-kind base ranges.  The overlay lives and dies with
    this process; the file is never written.
    """

    __slots__ = (
        "_offsets",
        "_heaps",
        "_sorted",
        "_base",
        "_by_id",
        "_known_ids",
        "_extra_terms",
        "_decoded_heap_bytes",
        "_lock",
    )

    def __init__(self, sections, counts: Sequence[int]):
        self._offsets = tuple(
            _u64_view(sections[3 * kind + 0]) for kind in range(3)
        )
        self._heaps = tuple(
            memoryview(sections[3 * kind + 1]) for kind in range(3)
        )
        self._sorted = tuple(
            _u64_view(sections[3 * kind + 2]) for kind in range(3)
        )
        self._base = tuple(counts)
        for kind in range(3):
            heap_len = len(self._heaps[kind])
            if counts[kind] and self._offsets[kind][counts[kind]] != heap_len:
                raise SnapshotFormatError(
                    f"{_KIND_NAMES[kind]} heap length {heap_len} does not "
                    f"match its final offset"
                )
        #: flat id -> Term memo for decoded terms (lazy decode).
        self._by_id: Dict[int, Term] = {}
        #: term -> id memo for base hits plus all overlay terms.
        self._known_ids: Dict[Term, int] = {}
        #: per-kind overlay buckets for terms interned after open.
        self._extra_terms: Tuple[List[Term], ...] = ([], [], [])
        self._decoded_heap_bytes = 0
        self._lock = threading.Lock()

    # -- records --------------------------------------------------------

    def _record(self, kind: int, offset: int) -> bytes:
        offsets = self._offsets[kind]
        return bytes(self._heaps[kind][offsets[offset] : offsets[offset + 1]])

    # -- encoding -------------------------------------------------------

    def encode(self, term: Term) -> int:
        """The ID of ``term``; unseen terms intern into the overlay."""
        id = self.lookup(term)
        if id is not None:
            return id
        with self._lock:
            id = self._known_ids.get(term)
            if id is not None:
                return id
            kind = term._kind
            bucket = self._extra_terms[kind]
            id = kind * KIND_STRIDE + self._base[kind] + len(bucket)
            bucket.append(term)
            self._known_ids[term] = id
            return id

    def portable_id(self, id: int) -> bool:
        """Whether ``id`` names a term in the frozen base ID space.

        Base IDs are positional in the snapshot file, so every process
        mapping the same file agrees on them — they are safe inside
        continuation tokens as raw integers.  Overlay IDs (terms this
        process interned after open, e.g. computed aggregate values)
        exist only here and must be serialised as term literals.
        """
        kind, offset = divmod(id, KIND_STRIDE)
        try:
            return offset < self._base[kind]
        except IndexError:
            return False

    def lookup(self, term: Term) -> Optional[int]:
        """The ID of ``term`` if the snapshot (or overlay) holds it."""
        id = self._known_ids.get(term)
        if id is not None:
            return id
        kind = term._kind
        n = self._base[kind]
        if not n:
            return None
        record = _serialize_term(term)
        order = self._sorted[kind]
        offsets = self._offsets[kind]
        heap = self._heaps[kind]
        lo, hi = 0, n
        while lo < hi:
            mid = (lo + hi) >> 1
            j = order[mid]
            candidate = bytes(heap[offsets[j] : offsets[j + 1]])
            if candidate < record:
                lo = mid + 1
            elif candidate > record:
                hi = mid
            else:
                id = kind * KIND_STRIDE + j
                self._known_ids[term] = id
                return id
        return None

    # -- decoding -------------------------------------------------------

    def decode(self, id: int) -> Term:
        """Materialise the term behind ``id`` (lazy, memoised).

        The hit path is a single flat ``id -> Term`` dict probe — this
        sits in the engine's decode-at-the-plan-root hot loop, so the
        kind/offset arithmetic is deferred to the miss path.
        """
        term = self._by_id.get(id)
        if term is not None:
            return term
        return self._decode_miss(id)

    def _decode_miss(self, id: int) -> Term:
        kind, offset = divmod(id, KIND_STRIDE)
        if not 0 <= kind <= 2:
            raise KeyError(f"unknown term id: {id!r}")
        base = self._base[kind]
        if offset < base:
            record = self._record(kind, offset)
            term = _parse_term(kind, record)
            self._by_id[id] = term
            self._known_ids.setdefault(term, id)
            self._decoded_heap_bytes += len(record)
            return term
        try:
            term = self._extra_terms[kind][offset - base]
        except IndexError:
            raise KeyError(f"unknown term id: {id!r}")
        self._by_id[id] = term
        return term

    def decode_triple(self, ids: Tuple[int, int, int]) -> Tuple[Term, Term, Term]:
        decode = self.decode
        s, p, o = ids
        return (decode(s), decode(p), decode(o))

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return sum(self._base) + sum(len(b) for b in self._extra_terms)

    def __contains__(self, term: object) -> bool:
        return isinstance(term, Term) and self.lookup(term) is not None

    def size_by_kind(self) -> Dict[str, int]:
        return {
            name: self._base[kind] + len(self._extra_terms[kind])
            for kind, name in enumerate(_KIND_NAMES)
        }

    def terms(self) -> Iterator[Term]:
        """All terms in ID order (decodes the whole heap — O(n))."""
        for kind in range(3):
            for offset in range(self._base[kind]):
                yield self.decode(kind * KIND_STRIDE + offset)
            yield from self._extra_terms[kind]

    def export_kind(self, kind: int) -> Tuple[Term, ...]:
        """Stable ID-order export (mirrors
        :meth:`TermDictionary.export_kind`), overlay included."""
        base = tuple(
            self.decode(kind * KIND_STRIDE + offset)
            for offset in range(self._base[kind])
        )
        return base + tuple(self._extra_terms[kind])

    def materialized_heap_bytes(self) -> int:
        """Heap bytes decoded into Python terms so far (lazy-decode
        progress; feeds the resident-bytes proxy)."""
        return self._decoded_heap_bytes

    def __repr__(self) -> str:
        sizes = self.size_by_kind()
        return (
            f"<SnapshotDictionary {len(self)} terms "
            f"({sizes['uri']} uri, {sizes['bnode']} bnode, "
            f"{sizes['literal']} literal)>"
        )


# ----------------------------------------------------------------------
# The read-only graph
# ----------------------------------------------------------------------


class SnapshotGraph:
    """A :class:`Graph`-shaped read-only store over an mmap'd snapshot.

    Open is O(1): header + section-table validation and (by default) a
    CRC-32 pass over the payload — no term is decoded, no index is
    rebuilt.  Pattern scans binary-search the packed SPO/POS/OSP arrays
    and enumerate in the same sorted ID order as the in-memory store,
    so the physical operators, continuation tokens, EXPLAIN, and the
    serving frontend run over it unchanged.
    """

    __slots__ = (
        "_buffer",
        "_mmap",
        "_file",
        "_dict",
        "_size",
        "_spo_v",
        "_pos_v",
        "_osp_v",
        "_stats_view",
        "_stats",
        "_ranges",
        "_open_stat",
        "path",
        "name",
    )

    #: The storage-backend seam marker: layers that must refuse to
    #: mutate (or want the mutable escape hatch) test this instead of
    #: ``isinstance(graph, Graph)``.
    is_snapshot = True

    def __init__(self, buffer, *, verify: bool = True, mmap_obj=None,
                 file=None, path: str = "", name: str = ""):
        started = time.perf_counter()
        try:
            (
                _payload_len,
                checksum,
                triple_count,
                n_uri,
                n_bnode,
                n_literal,
            ) = _parse_header(buffer)
            if verify:
                actual = zlib.crc32(memoryview(buffer)[HEADER_SIZE:]) & 0xFFFFFFFF
                if actual != checksum:
                    raise SnapshotChecksumError(
                        f"payload checksum 0x{actual:08x} does not match "
                        f"header 0x{checksum:08x}"
                    )
            counts = (n_uri, n_bnode, n_literal)
            sections = _parse_sections(buffer, counts, triple_count)
        except Exception:
            if mmap_obj is not None:
                mmap_obj.close()
            if file is not None:
                file.close()
            raise
        self._buffer = buffer
        self._mmap = mmap_obj
        self._file = file
        self._dict = SnapshotDictionary(sections, counts)
        self._size = triple_count
        self._spo_v = _u64_view(sections[_SEC_SPO])
        self._pos_v = _u64_view(sections[_SEC_POS])
        self._osp_v = _u64_view(sections[_SEC_OSP])
        self._stats_view = _u64_view(sections[_SEC_STATS])
        self._stats = None
        # Memoised prefix-range results per ordering.  The store is
        # immutable, so a computed [lo, hi) never invalidates; join
        # operators re-probe the same bound prefixes constantly (every
        # binding of the outer side), which makes even a modest cache
        # pay for its dict lookups many times over.
        self._ranges = ({}, {}, {})
        # Identity of the mapped file at open time: (device, inode,
        # size).  ``snapshot_stale()`` re-stats the path against this,
        # which catches the classic rebuild-and-rename swap (new inode)
        # as well as in-place truncation (size change).  In-memory
        # images have no path and are never stale.
        self._open_stat = None
        if file is not None:
            stat = os.fstat(file.fileno())
            self._open_stat = (stat.st_dev, stat.st_ino, stat.st_size)
        self.path = path
        self.name = name or (os.path.basename(path) if path else "")
        _SNAP_OPEN_SECONDS.set(time.perf_counter() - started)
        _SNAP_FILE_BYTES.set(len(buffer))
        _SNAP_RESIDENT_BYTES.set(_process_rss_bytes())

    # -- constructors ---------------------------------------------------

    @classmethod
    def open(cls, path: str, *, verify: bool = True, name: str = "") -> "SnapshotGraph":
        """mmap ``path`` read-only and wrap it (zero-copy boot)."""
        file = open(path, "rb")
        try:
            mapped = mmap.mmap(file.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            # an empty file cannot be mapped; surface it as truncation
            file.close()
            raise SnapshotTruncatedError(f"{path} is empty")
        return cls(
            memoryview(mapped), verify=verify, mmap_obj=mapped, file=file,
            path=path, name=name,
        )

    @classmethod
    def from_bytes(cls, data: bytes, *, verify: bool = True,
                   name: str = "") -> "SnapshotGraph":
        """Wrap an in-memory snapshot image (tests, format tooling)."""
        return cls(memoryview(data), verify=verify, name=name)

    def close(self) -> None:
        """Release the views and the mapping.  Queries after close fail."""
        self._spo_v = self._pos_v = self._osp_v = self._stats_view = None
        self._ranges = ({}, {}, {})
        self._dict = None
        self._buffer = None
        if self._mmap is not None:
            import gc

            gc.collect()
            try:
                self._mmap.close()
            except BufferError:
                # A live memoryview still pins the mapping — typically a
                # suspended scan generator held by a plan cache or an
                # unfinished page.  The mapping is released when the last
                # view is garbage-collected; dropping our reference is
                # all close() can do.
                pass
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "SnapshotGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- staleness ------------------------------------------------------

    def snapshot_stale(self) -> bool:
        """Whether the file at ``path`` still is the file this graph
        mapped.

        The mmap itself keeps serving the *old* pages after a rename
        swap (the kernel pins the unlinked inode), so reads stay
        self-consistent — but they no longer reflect what a fresh open
        would see, and a continuation token minted here would resume
        against different data elsewhere.  Deleted or unstattable files
        count as stale.  In-memory images (``from_bytes``) are never
        stale.
        """
        if self._open_stat is None or not self.path:
            return False
        try:
            stat = os.stat(self.path)
        except OSError:
            return True
        return (stat.st_dev, stat.st_ino, stat.st_size) != self._open_stat

    def ensure_fresh(self) -> None:
        """Raise :class:`SnapshotStaleError` if :meth:`snapshot_stale`."""
        if self.snapshot_stale():
            raise SnapshotStaleError(
                f"snapshot file {self.path!r} was modified or replaced "
                "underneath the live mapping; reopen to pick up the new "
                "contents"
            )

    # -- the storage-backend protocol -----------------------------------

    @property
    def dictionary(self) -> SnapshotDictionary:
        return self._dict

    @property
    def version(self) -> int:
        """Always ``0``: the store is immutable, so version-keyed caches
        (plan cache, HVS, statistics) and continuation tokens never
        invalidate for the lifetime of the snapshot."""
        return 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def triples_ids(
        self,
        s: Optional[int] = None,
        p: Optional[int] = None,
        o: Optional[int] = None,
    ) -> Iterator[Tuple[int, int, int]]:
        """Binary-search pattern scan over the packed arrays.

        Branch selection and iteration order are identical to the
        in-memory :meth:`Graph.triples_ids` (sorted ID order in every
        position), including the index-lookup metric accounting.
        """
        if s is not None:
            (_LOOKUP_OSP if (p is None and o is not None) else _LOOKUP_SPO).inc()
        elif p is not None:
            _LOOKUP_POS.inc()
        elif o is not None:
            _LOOKUP_OSP.inc()
        else:
            _LOOKUP_FULL_SCAN.inc()
        n = self._size
        if s is None and p is None and o is None:
            return _iter_rows(self._spo_v, 0, n)
        if s is not None:
            if p is None and o is not None:
                lo, hi = self._range(2, (o, s))
                return _iter_rows(self._osp_v, lo, hi, 1, 2, 0)
            if p is None:
                prefix = (s,)
            elif o is None:
                prefix = (s, p)
            else:
                prefix = (s, p, o)
            lo, hi = self._range(0, prefix)
            return _iter_rows(self._spo_v, lo, hi)
        if p is not None:
            lo, hi = self._range(1, (p,) if o is None else (p, o))
            return _iter_rows(self._pos_v, lo, hi, 2, 0, 1)
        lo, hi = self._range(2, (o,))
        return _iter_rows(self._osp_v, lo, hi, 1, 2, 0)

    def _range(self, which: int, prefix) -> Tuple[int, int]:
        """Memoised :func:`_prefix_range` over ordering ``which``
        (0 = SPO, 1 = POS, 2 = OSP).  Sound because the store is
        immutable for its whole lifetime."""
        cache = self._ranges[which]
        hit = cache.get(prefix)
        if hit is None:
            if len(cache) >= _RANGE_CACHE_LIMIT:
                cache.clear()
            view = (self._spo_v, self._pos_v, self._osp_v)[which]
            hit = _prefix_range(view, self._size, prefix)
            cache[prefix] = hit
        return hit

    def count_ids(
        self,
        s: Optional[int] = None,
        p: Optional[int] = None,
        o: Optional[int] = None,
    ) -> int:
        """Exact match count — every pattern shape is a prefix range on
        one of the orderings, so counting is O(log n), no iteration."""
        if s is None and p is None and o is None:
            return self._size
        if s is not None:
            if p is None and o is not None:
                lo, hi = self._range(2, (o, s))
            else:
                if p is None:
                    prefix = (s,)
                elif o is None:
                    prefix = (s, p)
                else:
                    prefix = (s, p, o)
                lo, hi = self._range(0, prefix)
        elif p is not None:
            lo, hi = self._range(1, (p,) if o is None else (p, o))
        else:
            lo, hi = self._range(2, (o,))
        return hi - lo

    def statistics(self) -> GraphStatistics:
        """The build-time cardinality summary, parsed lazily (O(1) boot
        is preserved: nothing is scanned, the counts were precomputed
        when the snapshot was written)."""
        stats = self._stats
        if stats is None:
            stats = self._parse_stats()
            self._stats = stats
        return stats

    def _parse_stats(self) -> GraphStatistics:
        view = self._stats_view
        decode = self._dict.decode
        try:
            total, distinct_subjects, distinct_objects, n_predicates = (
                view[0], view[1], view[2], view[3]
            )
            index = 4
            predicate_triples: Dict[URI, int] = {}
            predicate_subjects: Dict[URI, int] = {}
            predicate_objects: Dict[URI, int] = {}
            for _ in range(n_predicates):
                predicate = decode(view[index])
                predicate_triples[predicate] = view[index + 1]
                predicate_subjects[predicate] = view[index + 2]
                predicate_objects[predicate] = view[index + 3]
                index += 4
            class_instances: Dict[URI, int] = {}
            n_classes = view[index]
            index += 1
            for _ in range(n_classes):
                class_instances[decode(view[index])] = view[index + 1]
                index += 2
        except (IndexError, KeyError) as exc:
            raise SnapshotFormatError(
                f"statistics section is corrupt: {exc}"
            ) from exc
        return GraphStatistics(
            version=self.version,
            total_triples=total,
            predicate_triples=predicate_triples,
            predicate_subjects=predicate_subjects,
            predicate_objects=predicate_objects,
            class_instances=class_instances,
            distinct_subjects=distinct_subjects,
            distinct_objects=distinct_objects,
        )

    # -- term plane -----------------------------------------------------

    def _encode_pattern(
        self,
        subject: Optional[Subject],
        predicate: Optional[URI],
        object: Optional[RDFObject],
    ) -> Tuple[Optional[int], Optional[int], Optional[int]]:
        lookup = self._dict.lookup
        s = None
        if subject is not None:
            s = lookup(subject)
            if s is None:
                s = _UNKNOWN
        p = None
        if predicate is not None:
            p = lookup(predicate)
            if p is None:
                p = _UNKNOWN
        o = None
        if object is not None:
            o = lookup(object)
            if o is None:
                o = _UNKNOWN
        return s, p, o

    def triples(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[URI] = None,
        object: Optional[RDFObject] = None,
    ) -> Iterator[Triple]:
        s, p, o = self._encode_pattern(subject, predicate, object)
        decode_triple = self._dict.decode_triple
        for ids in self.triples_ids(s, p, o):
            yield Triple(*decode_triple(ids))

    def match(self, pattern: TriplePattern) -> Iterator[Triple]:
        return self.triples(pattern.subject, pattern.predicate, pattern.object)

    def count(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[URI] = None,
        object: Optional[RDFObject] = None,
    ) -> int:
        s, p, o = self._encode_pattern(subject, predicate, object)
        return self.count_ids(s, p, o)

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, tuple) or len(triple) != 3:
            return False
        s, p, o = self._encode_pattern(*triple)
        if _UNKNOWN in (s, p, o):
            return False
        return self.count_ids(s, p, o) > 0

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def subjects(
        self, predicate: Optional[URI] = None, object: Optional[RDFObject] = None
    ) -> Iterator[Subject]:
        decode = self._dict.decode
        _, p, o = self._encode_pattern(None, predicate, object)
        seen: Set[int] = set()
        for s, _, _ in self.triples_ids(None, p, o):
            if s not in seen:
                seen.add(s)
                yield decode(s)

    def predicates(
        self, subject: Optional[Subject] = None, object: Optional[RDFObject] = None
    ) -> Iterator[URI]:
        decode = self._dict.decode
        s, _, o = self._encode_pattern(subject, None, object)
        seen: Set[int] = set()
        for _, p, _ in self.triples_ids(s, None, o):
            if p not in seen:
                seen.add(p)
                yield decode(p)

    def objects(
        self, subject: Optional[Subject] = None, predicate: Optional[URI] = None
    ) -> Iterator[RDFObject]:
        decode = self._dict.decode
        s, p, _ = self._encode_pattern(subject, predicate, None)
        seen: Set[int] = set()
        for _, _, o in self.triples_ids(s, p, None):
            if o not in seen:
                seen.add(o)
                yield decode(o)

    def value(
        self, subject: Optional[Subject] = None, predicate: Optional[URI] = None,
        object: Optional[RDFObject] = None,
    ) -> Optional[RDFObject]:
        wildcards = sum(term is None for term in (subject, predicate, object))
        if wildcards != 1:
            raise ValueError("value() requires exactly one wildcard position")
        for triple in self.triples(subject, predicate, object):
            if subject is None:
                return triple.subject
            if predicate is None:
                return triple.predicate
            return triple.object
        return None

    # -- derived views --------------------------------------------------

    def _first_column_runs(self, view) -> Iterator[int]:
        """Distinct values of a sorted ordering's first column (run
        boundaries — no set is built)."""
        last = None
        for start in range(0, self._size, _CHUNK_ROWS):
            stop = min(self._size, start + _CHUNK_ROWS)
            vals = view[3 * start : 3 * stop].tolist()
            for j in range(0, len(vals), 3):
                value = vals[j]
                if value != last:
                    last = value
                    yield value

    def uris(self) -> Set[URI]:
        """The set U(G) of URIs occurring in the graph."""
        decode = self._dict.decode
        found: Set[URI] = set()
        for s in self._first_column_runs(self._spo_v):
            if s < KIND_STRIDE:
                found.add(decode(s))
        for p in self._first_column_runs(self._pos_v):
            found.add(decode(p))
        for o in self._first_column_runs(self._osp_v):
            if o < KIND_STRIDE:
                found.add(decode(o))
        return found

    def literals(self) -> Set[Literal]:
        """The set L(G) of literals occurring in the graph."""
        decode = self._dict.decode
        literal_base = 2 * KIND_STRIDE
        return {
            decode(o)
            for o in self._first_column_runs(self._osp_v)
            if o >= literal_base
        }

    def copy(self, name: str = "") -> Graph:
        """Materialise a mutable in-memory :class:`Graph` — the escape
        hatch out of the read-only snapshot."""
        return Graph(self.triples(), name=name or self.name)

    def windows(self, size: int) -> Iterator[Graph]:
        """Consecutive windows of ``size`` triples (see
        :meth:`Graph.windows`); each window materialises in memory."""
        if size <= 0:
            raise ValueError("window size must be positive")
        batch: List[Triple] = []
        for triple in self.triples():
            batch.append(triple)
            if len(batch) == size:
                yield Graph(batch)
                batch = []
        if batch:
            yield Graph(batch)

    # -- refusal of the write plane -------------------------------------

    def _read_only(self, operation: str):
        raise SnapshotReadOnlyError(
            f"cannot {operation} on a SnapshotGraph: snapshots are "
            f"immutable (use .copy() for a mutable in-memory Graph)"
        )

    def add(self, *args, **kwargs):
        self._read_only("add a triple")

    def add_triple(self, *args, **kwargs):
        self._read_only("add a triple")

    def update(self, *args, **kwargs):
        self._read_only("update")

    def bulk_load(self, *args, **kwargs):
        self._read_only("bulk-load")

    def bulk(self, *args, **kwargs):
        self._read_only("open a bulk mutation block")

    def remove(self, *args, **kwargs):
        self._read_only("remove a triple")

    def remove_pattern(self, *args, **kwargs):
        self._read_only("remove a pattern")

    def clear(self, *args, **kwargs):
        self._read_only("clear")

    # -- accounting -----------------------------------------------------

    def file_bytes(self) -> int:
        """The mapped snapshot's total size in bytes."""
        return len(self._buffer)

    def resident_bytes(self) -> int:
        """Process RSS right now (page-fault proxy: grows as queries
        touch pages of the mapping).  Also refreshes the
        ``repro_snapshot_resident_bytes`` gauge."""
        rss = _process_rss_bytes()
        _SNAP_RESIDENT_BYTES.set(rss)
        return rss

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<SnapshotGraph{label} with {self._size} triples (mmap)>"


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------


def open_snapshot(path: str, *, verify: bool = True, name: str = "") -> SnapshotGraph:
    """Open a snapshot file zero-copy; see :meth:`SnapshotGraph.open`."""
    return SnapshotGraph.open(path, verify=verify, name=name)


def snapshot_info(path: str) -> Dict[str, object]:
    """Header and section-table summary of a snapshot file (reads the
    header and table only; payload pages are not touched beyond the
    table)."""
    with open(path, "rb") as handle:
        head = handle.read(HEADER_SIZE + _SECTION_TABLE_SIZE)
        file_bytes = os.fstat(handle.fileno()).st_size
    if len(head) < HEADER_SIZE:
        raise SnapshotTruncatedError(
            f"file is {len(head)} bytes; the header alone is {HEADER_SIZE}"
        )
    (
        magic,
        version,
        flags,
        payload_len,
        checksum,
        _reserved,
        triple_count,
        n_uri,
        n_bnode,
        n_literal,
    ) = struct.unpack_from(_HEADER_FMT, head, 0)
    if magic != MAGIC:
        raise SnapshotMagicError(
            f"not a snapshot file: magic {bytes(magic)!r} != {MAGIC!r}"
        )
    if version != FORMAT_VERSION:
        raise SnapshotVersionError(
            f"unsupported snapshot format version {version} "
            f"(this reader speaks {FORMAT_VERSION})"
        )
    if len(head) < HEADER_SIZE + _SECTION_TABLE_SIZE:
        raise SnapshotTruncatedError("file ends inside the section table")
    section_names = (
        "uri_offsets", "uri_heap", "uri_sorted",
        "bnode_offsets", "bnode_heap", "bnode_sorted",
        "literal_offsets", "literal_heap", "literal_sorted",
        "spo", "pos", "osp", "stats",
    )
    sections = []
    for index, section_name in enumerate(section_names):
        offset, length = struct.unpack_from(
            "<QQ", head, HEADER_SIZE + 16 * index
        )
        sections.append({"name": section_name, "offset": offset, "bytes": length})
    return {
        "path": path,
        "format_version": version,
        "flags": flags,
        "file_bytes": file_bytes,
        "payload_bytes": payload_len,
        "checksum_crc32": f"0x{checksum:08x}",
        "triples": triple_count,
        "terms": {"uri": n_uri, "bnode": n_bnode, "literal": n_literal},
        "sections": sections,
    }
