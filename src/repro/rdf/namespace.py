"""Namespaces and prefix management.

A :class:`Namespace` mints URIs by attribute or item access::

    DBO = Namespace("http://dbpedia.org/ontology/")
    DBO.Person          # URI("http://dbpedia.org/ontology/Person")
    DBO["Person"]       # same

A :class:`NamespaceManager` maintains prefix bindings and converts between
full URIs and compact qnames, which the Turtle serialiser and the SPARQL
generator use.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .terms import URI

__all__ = ["Namespace", "NamespaceManager"]


class Namespace:
    """A URI prefix that mints :class:`URI` terms."""

    __slots__ = ("base",)

    def __init__(self, base: str):
        if not base:
            raise ValueError("namespace base must be non-empty")
        object.__setattr__(self, "base", base)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Namespace is immutable")

    def __getattr__(self, name: str) -> URI:
        if name.startswith("_"):
            raise AttributeError(name)
        return URI(self.base + name)

    def __getitem__(self, name: str) -> URI:
        return URI(self.base + name)

    def term(self, name: str) -> URI:
        """Mint a URI for ``name`` (works for names shadowed by slots)."""
        return URI(self.base + name)

    def __contains__(self, uri: object) -> bool:
        if isinstance(uri, URI):
            return uri.value.startswith(self.base)
        if isinstance(uri, str):
            return uri.startswith(self.base)
        return False

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Namespace):
            return self.base == other.base
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Namespace", self.base))

    def __repr__(self) -> str:
        return f"Namespace({self.base!r})"

    def __str__(self) -> str:
        return self.base


def _is_local_name(text: str) -> bool:
    """Conservative check that ``text`` can appear as a qname local part."""
    if not text:
        return False
    return all(ch.isalnum() or ch in "_-." for ch in text) and not text[0] in ".-"


class NamespaceManager:
    """Bidirectional prefix <-> namespace bindings."""

    def __init__(self, bindings: Optional[Dict[str, str]] = None):
        self._prefix_to_ns: Dict[str, str] = {}
        self._ns_to_prefix: Dict[str, str] = {}
        if bindings:
            for prefix, namespace in bindings.items():
                self.bind(prefix, namespace)

    def bind(self, prefix: str, namespace: str | Namespace, replace: bool = True) -> None:
        """Bind ``prefix`` to ``namespace``.

        With ``replace=False``, a conflicting existing binding raises
        ``ValueError`` instead of being overwritten.
        """
        base = namespace.base if isinstance(namespace, Namespace) else namespace
        existing = self._prefix_to_ns.get(prefix)
        if existing is not None and existing != base:
            if not replace:
                raise ValueError(
                    f"prefix {prefix!r} already bound to {existing!r}"
                )
            self._ns_to_prefix.pop(existing, None)
        self._prefix_to_ns[prefix] = base
        self._ns_to_prefix.setdefault(base, prefix)

    def namespace(self, prefix: str) -> Optional[str]:
        """The namespace bound to ``prefix``, or None."""
        return self._prefix_to_ns.get(prefix)

    def prefix(self, namespace: str) -> Optional[str]:
        """The prefix bound to ``namespace``, or None."""
        return self._ns_to_prefix.get(namespace)

    def expand(self, qname: str) -> URI:
        """Expand ``prefix:local`` to a full URI."""
        prefix, sep, local = qname.partition(":")
        if not sep:
            raise ValueError(f"not a qname: {qname!r}")
        base = self._prefix_to_ns.get(prefix)
        if base is None:
            raise KeyError(f"unknown prefix: {prefix!r}")
        return URI(base + local)

    def qname(self, uri: URI | str) -> Optional[str]:
        """Compact ``uri`` to ``prefix:local`` if a binding covers it."""
        value = uri.value if isinstance(uri, URI) else uri
        best: Optional[Tuple[str, str]] = None
        for base, prefix in self._ns_to_prefix.items():
            if value.startswith(base):
                local = value[len(base):]
                if not _is_local_name(local):
                    continue
                if best is None or len(base) > len(best[1]):
                    best = (prefix, base)
        if best is None:
            return None
        prefix, base = best
        return f"{prefix}:{value[len(base):]}"

    def qname_or_n3(self, uri: URI) -> str:
        """Compact form when possible, else angle-bracketed URI."""
        return self.qname(uri) or uri.n3()

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(sorted(self._prefix_to_ns.items()))

    def __len__(self) -> int:
        return len(self._prefix_to_ns)

    def __contains__(self, prefix: object) -> bool:
        return prefix in self._prefix_to_ns

    def copy(self) -> "NamespaceManager":
        return NamespaceManager(dict(self._prefix_to_ns))
