"""Cached cardinality statistics over a :class:`~repro.rdf.graph.Graph`.

The cost-based passes of :mod:`repro.sparql.optimizer` need cheap,
approximately-right cardinalities: how many triples carry a predicate,
how many distinct subjects/objects it touches, and how many instances a
class has.  This module derives all of them in one pass over the POS
index and caches the summary on the graph, keyed by the graph's
``version`` counter — the same invalidation signal the HVS and the plan
cache use, so a statistics summary can never describe a graph state that
no longer exists.

Estimates follow the classic System-R uniformity assumptions: a bound
subject on predicate ``p`` selects ``triples(p) / distinct_subjects(p)``
rows, a bound object ``triples(p) / distinct_objects(p)``, and an
``rdf:type`` pattern with a concrete class is answered exactly from the
per-class instance counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..obs.metrics import REGISTRY
from .terms import URI
from .vocab import RDF

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import Graph

__all__ = ["GraphStatistics", "statistics_for"]

_STATS_BUILDS_TOTAL = REGISTRY.counter(
    "repro_graph_stats_builds_total",
    "Cardinality-summary rebuilds (one per graph version actually planned against)",
)

_RDF_TYPE = RDF.term("type")


@dataclass(frozen=True)
class GraphStatistics:
    """One immutable cardinality summary of a graph version."""

    version: int
    total_triples: int
    #: predicate -> number of triples carrying it
    predicate_triples: Dict[URI, int] = field(default_factory=dict)
    #: predicate -> number of distinct subjects featuring it
    predicate_subjects: Dict[URI, int] = field(default_factory=dict)
    #: predicate -> number of distinct objects it points at
    predicate_objects: Dict[URI, int] = field(default_factory=dict)
    #: class URI -> number of rdf:type instances
    class_instances: Dict[URI, int] = field(default_factory=dict)
    #: distinct subjects/objects across the whole graph (for ?s ?p ?o shapes)
    distinct_subjects: int = 0
    distinct_objects: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, graph: "Graph") -> "GraphStatistics":
        """Derive the summary from the graph's POS index in one pass.

        Counting happens entirely in ID space (int sets over the encoded
        index); only the handful of predicate and class keys that make it
        into the summary are decoded back to URIs at the end.
        """
        from .dictionary import KIND_STRIDE

        predicate_triples: Dict[URI, int] = {}
        predicate_subjects: Dict[URI, int] = {}
        predicate_objects: Dict[URI, int] = {}
        class_instances: Dict[URI, int] = {}
        decode = graph.dictionary.decode
        for p_id, by_object in graph._pos.items():
            triples = 0
            subjects: set = set()
            for subject_list in by_object.values():
                triples += len(subject_list)
                subjects.update(subject_list)
            predicate = decode(p_id)
            predicate_triples[predicate] = triples
            predicate_subjects[predicate] = len(subjects)
            predicate_objects[predicate] = len(by_object)
        rdf_type_id = graph.dictionary.lookup(_RDF_TYPE)
        if rdf_type_id is not None:
            for obj_id, subject_list in graph._pos.get(rdf_type_id, {}).items():
                if obj_id < KIND_STRIDE:  # URI-kind IDs only: classes
                    class_instances[decode(obj_id)] = len(subject_list)
        _STATS_BUILDS_TOTAL.inc()
        return cls(
            version=graph.version,
            total_triples=len(graph),
            predicate_triples=predicate_triples,
            predicate_subjects=predicate_subjects,
            predicate_objects=predicate_objects,
            class_instances=class_instances,
            distinct_subjects=len(graph._spo),
            distinct_objects=len(graph._osp),
        )

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def class_count(self, cls: URI) -> int:
        """Exact instance count of a class (0 when unseen)."""
        return self.class_instances.get(cls, 0)

    def triple_pattern_cardinality(
        self,
        subject_bound: bool,
        predicate: Optional[URI],
        object_bound: bool,
        object_class: Optional[URI] = None,
    ) -> float:
        """Expected matches of one triple pattern.

        ``subject_bound`` / ``object_bound`` say whether that position is
        a constant **or** a variable already bound by an earlier pattern;
        ``predicate`` is the concrete predicate, or None for a variable.
        ``object_class`` short-circuits ``rdf:type <C>`` to the exact
        per-class count.
        """
        if predicate is not None and predicate == _RDF_TYPE and object_class is not None:
            base = float(self.class_count(object_class))
            if subject_bound:
                # one subject, one class: either the type edge exists or not
                return min(base, 1.0)
            return base
        if predicate is not None:
            base = float(self.predicate_triples.get(predicate, 0))
            if subject_bound:
                base /= max(1, self.predicate_subjects.get(predicate, 1))
            if object_bound:
                base /= max(1, self.predicate_objects.get(predicate, 1))
            return base
        base = float(self.total_triples)
        if subject_bound:
            base /= max(1, self.distinct_subjects)
        if object_bound:
            base /= max(1, self.distinct_objects)
        return base

    def path_cardinality(
        self, path, subject_bound: bool, object_bound: bool
    ) -> float:
        """Expected pairs matched by a property-path pattern.

        ``path`` is a :mod:`repro.sparql.ast` path expression (or a
        plain URI step).  Same uniformity assumptions as flat patterns,
        composed over the path algebra: sequences chain the per-node
        fan-out of each step, alternatives add, inverses swap the bound
        sides, and closures inflate the single-hop estimate by a
        logarithmic expansion factor (reachability grows with hop count
        but the visited-set dedup saturates quickly on real hierarchies).
        """
        # Imported lazily: rdf.stats must stay importable without the
        # sparql layer (which itself imports this module).
        from math import log2

        from ..sparql.ast import (
            AlternativePath,
            InversePath,
            RepeatPath,
            SequencePath,
        )

        def fanout(step) -> float:
            """Average targets reached per node by one step application."""
            return estimate(step, True, False)

        def estimate(step, s_bound: bool, o_bound: bool) -> float:
            if isinstance(step, InversePath):
                return estimate(step.inner, o_bound, s_bound)
            if isinstance(step, SequencePath):
                card = estimate(step.steps[0], s_bound, False)
                for later in step.steps[1:]:
                    card *= fanout(later)
                if o_bound:
                    card /= max(1, self.distinct_objects)
                return card
            if isinstance(step, AlternativePath):
                return sum(
                    estimate(choice, s_bound, o_bound)
                    for choice in step.choices
                )
            if isinstance(step, RepeatPath):
                base = estimate(step.inner, s_bound, o_bound)
                if step.max_one:  # ``?``: zero or one application
                    expansion = 1.0
                else:  # ``*`` / ``+``: multi-hop reachability
                    expansion = 1.0 + log2(2.0 + base)
                card = base * expansion
                if step.min_hops == 0:
                    # Zero-length pairs: every candidate start matches
                    # itself (one self-pair when an endpoint is bound).
                    if s_bound or o_bound:
                        card += 1.0
                    else:
                        card += float(
                            max(self.distinct_subjects, self.distinct_objects)
                        )
                return card
            # A plain URI step.
            return self.triple_pattern_cardinality(s_bound, step, o_bound)

        return estimate(path, subject_bound, object_bound)


def statistics_for(graph: "Graph") -> GraphStatistics:
    """The (cached) statistics summary for the graph's current version."""
    return graph.statistics()
