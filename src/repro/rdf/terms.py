"""RDF term model: URIs, literals, and blank nodes.

The paper's formal model (Section 2) assumes infinite collections **U** of
URIs and **L** of literals; an RDF triple is an element of
``U x U x (U ∪ L)``.  We additionally support blank nodes, which occur in
real Linked Data even though the formal model elides them.

Terms are immutable, hashable, and totally ordered (URIs < BNodes <
Literals, then lexicographically) so that charts, query results, and
serialisations are deterministic.
"""

from __future__ import annotations

import threading
from typing import Union

__all__ = [
    "Term",
    "URI",
    "BNode",
    "Literal",
    "Subject",
    "Predicate",
    "RDFObject",
    "XSD_STRING",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_BOOLEAN",
    "LANG_STRING",
]

_XSD = "http://www.w3.org/2001/XMLSchema#"
_RDF = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"

# Sort keys used to order term kinds deterministically.
_KIND_URI = 0
_KIND_BNODE = 1
_KIND_LITERAL = 2


class Term:
    """Abstract base class for RDF terms."""

    __slots__ = ()

    #: Kind tag used for cross-type ordering; set by subclasses.
    _kind: int = -1

    def sort_key(self) -> tuple:
        """Return a tuple usable to totally order heterogeneous terms."""
        raise NotImplementedError

    def n3(self) -> str:
        """Return the N-Triples / Turtle serialisation of this term."""
        raise NotImplementedError

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: object) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: object) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: object) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


class URI(Term):
    """A Unique Resource Identifier (an element of **U**)."""

    __slots__ = ("value", "_hash", "_sort_key")
    _kind = _KIND_URI

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(f"URI value must be str, got {type(value).__name__}")
        if not value:
            raise ValueError("URI value must be non-empty")
        if any(ch in value for ch in "<>\"{}|^`") or any(
            ord(ch) <= 0x20 for ch in value
        ):
            raise ValueError(f"invalid characters in URI: {value!r}")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash((_KIND_URI, value)))
        object.__setattr__(self, "_sort_key", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("URI is immutable")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, URI):
            return self.value == other.value
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"URI({self.value!r})"

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        return f"<{self.value}>"

    def sort_key(self) -> tuple:
        key = self._sort_key
        if key is None:
            key = (_KIND_URI, self.value)
            object.__setattr__(self, "_sort_key", key)
        return key

    @property
    def local_name(self) -> str:
        """The fragment or last path segment, e.g. ``Person`` for
        ``http://dbpedia.org/ontology/Person``."""
        value = self.value
        for sep in ("#", "/", ":"):
            idx = value.rfind(sep)
            if 0 <= idx < len(value) - 1:
                return value[idx + 1 :]
        return value

    @property
    def namespace(self) -> str:
        """Everything up to and including the last ``#`` or ``/``."""
        value = self.value
        for sep in ("#", "/"):
            idx = value.rfind(sep)
            if idx >= 0:
                return value[: idx + 1]
        return value


_bnode_lock = threading.Lock()
_bnode_counter = 0


def _next_bnode_id() -> str:
    global _bnode_counter
    with _bnode_lock:
        _bnode_counter += 1
        return f"b{_bnode_counter}"


class BNode(Term):
    """A blank node with a local identifier."""

    __slots__ = ("id", "_hash", "_sort_key")
    _kind = _KIND_BNODE

    def __init__(self, id: str | None = None):
        if id is None:
            id = _next_bnode_id()
        if not isinstance(id, str) or not id:
            raise ValueError("BNode id must be a non-empty string")
        object.__setattr__(self, "id", id)
        object.__setattr__(self, "_hash", hash((_KIND_BNODE, id)))
        object.__setattr__(self, "_sort_key", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("BNode is immutable")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BNode):
            return self.id == other.id
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"BNode({self.id!r})"

    def __str__(self) -> str:
        return f"_:{self.id}"

    def n3(self) -> str:
        return f"_:{self.id}"

    def sort_key(self) -> tuple:
        key = self._sort_key
        if key is None:
            key = (_KIND_BNODE, self.id)
            object.__setattr__(self, "_sort_key", key)
        return key


XSD_STRING = f"{_XSD}string"
XSD_INTEGER = f"{_XSD}integer"
XSD_DECIMAL = f"{_XSD}decimal"
XSD_DOUBLE = f"{_XSD}double"
XSD_BOOLEAN = f"{_XSD}boolean"
LANG_STRING = f"{_RDF}langString"

_NUMERIC_DATATYPES = frozenset(
    {
        XSD_INTEGER,
        XSD_DECIMAL,
        XSD_DOUBLE,
        f"{_XSD}float",
        f"{_XSD}long",
        f"{_XSD}int",
        f"{_XSD}short",
        f"{_XSD}byte",
        f"{_XSD}nonNegativeInteger",
        f"{_XSD}positiveInteger",
        f"{_XSD}negativeInteger",
        f"{_XSD}nonPositiveInteger",
        f"{_XSD}unsignedLong",
        f"{_XSD}unsignedInt",
        f"{_XSD}unsignedShort",
        f"{_XSD}unsignedByte",
    }
)

_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def _escape_literal(text: str) -> str:
    out = []
    for ch in text:
        out.append(_ESCAPES.get(ch, ch))
    return "".join(out)


class Literal(Term):
    """An RDF literal (an element of **L**): lexical form plus an optional
    datatype URI or language tag.

    Construction from Python values is supported: ``Literal(5)`` yields an
    ``xsd:integer``, ``Literal(2.5)`` an ``xsd:double``, ``Literal(True)``
    an ``xsd:boolean``.
    """

    __slots__ = ("lexical", "datatype", "language", "_hash", "_sort_key")
    _kind = _KIND_LITERAL

    def __init__(
        self,
        value: Union[str, int, float, bool],
        datatype: str | URI | None = None,
        language: str | None = None,
    ):
        if language is not None and datatype is not None:
            raise ValueError("a literal cannot have both a language and a datatype")
        if isinstance(datatype, URI):
            datatype = datatype.value
        if isinstance(value, bool):
            lexical = "true" if value else "false"
            datatype = datatype or XSD_BOOLEAN
        elif isinstance(value, int):
            lexical = str(value)
            datatype = datatype or XSD_INTEGER
        elif isinstance(value, float):
            lexical = repr(value)
            datatype = datatype or XSD_DOUBLE
        elif isinstance(value, str):
            lexical = value
        else:
            raise TypeError(
                f"unsupported literal value type: {type(value).__name__}"
            )
        if language is not None:
            if not language or not all(
                part.isalnum() for part in language.split("-")
            ):
                raise ValueError(f"invalid language tag: {language!r}")
            language = language.lower()
            datatype = None
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)
        object.__setattr__(
            self, "_hash", hash((_KIND_LITERAL, lexical, datatype, language))
        )
        object.__setattr__(self, "_sort_key", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Literal is immutable")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Literal):
            return (
                self.lexical == other.lexical
                and self.datatype == other.datatype
                and self.language == other.language
            )
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.language:
            return f"Literal({self.lexical!r}, language={self.language!r})"
        if self.datatype:
            return f"Literal({self.lexical!r}, datatype={self.datatype!r})"
        return f"Literal({self.lexical!r})"

    def __str__(self) -> str:
        return self.lexical

    def n3(self) -> str:
        body = f'"{_escape_literal(self.lexical)}"'
        if self.language:
            return f"{body}@{self.language}"
        if self.datatype and self.datatype != XSD_STRING:
            return f"{body}^^<{self.datatype}>"
        return body

    def sort_key(self) -> tuple:
        key = self._sort_key
        if key is None:
            key = (
                _KIND_LITERAL,
                self.lexical,
                self.datatype or "",
                self.language or "",
            )
            object.__setattr__(self, "_sort_key", key)
        return key

    @property
    def is_numeric(self) -> bool:
        """Whether this literal has a numeric XSD datatype."""
        return self.datatype in _NUMERIC_DATATYPES

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert to the closest Python value; falls back to the lexical
        form when the datatype is unknown or the lexical form is invalid."""
        if self.datatype == XSD_BOOLEAN:
            if self.lexical in ("true", "1"):
                return True
            if self.lexical in ("false", "0"):
                return False
            return self.lexical
        if self.datatype in _NUMERIC_DATATYPES:
            try:
                if self.datatype == XSD_INTEGER or (
                    self.datatype
                    and "int" in self.datatype.lower()
                    or self.datatype
                    and self.datatype.endswith(("long", "short", "byte"))
                ):
                    return int(self.lexical)
                return float(self.lexical)
            except ValueError:
                return self.lexical
        return self.lexical


#: Type aliases for triple positions.
Subject = Union[URI, BNode]
Predicate = URI
RDFObject = Union[URI, BNode, Literal]
