"""RDF triples and triple patterns.

An RDF triple is an element of ``U x U x (U ∪ L)`` (paper, Section 2).
A :class:`TriplePattern` generalises a triple by allowing ``None`` as a
wildcard in any position, which is the query interface of
:class:`repro.rdf.graph.Graph`.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from .terms import BNode, Literal, RDFObject, Subject, Term, URI

__all__ = ["Triple", "TriplePattern"]


class Triple(NamedTuple):
    """An RDF triple ``(subject, predicate, object)``."""

    subject: Subject
    predicate: URI
    object: RDFObject

    def n3(self) -> str:
        """N-Triples serialisation (without trailing newline)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    @staticmethod
    def create(subject: Subject, predicate: URI, object: RDFObject) -> "Triple":
        """Construct a triple with position type validation."""
        if not isinstance(subject, (URI, BNode)):
            raise TypeError(
                f"triple subject must be URI or BNode, got {type(subject).__name__}"
            )
        if not isinstance(predicate, URI):
            raise TypeError(
                f"triple predicate must be URI, got {type(predicate).__name__}"
            )
        if not isinstance(object, (URI, BNode, Literal)):
            raise TypeError(
                f"triple object must be URI, BNode or Literal, "
                f"got {type(object).__name__}"
            )
        return Triple(subject, predicate, object)


class TriplePattern(NamedTuple):
    """A triple pattern; ``None`` matches any term in that position."""

    subject: Optional[Subject]
    predicate: Optional[URI]
    object: Optional[RDFObject]

    def matches(self, triple: Triple) -> bool:
        """Whether ``triple`` matches this pattern."""
        return (
            (self.subject is None or self.subject == triple.subject)
            and (self.predicate is None or self.predicate == triple.predicate)
            and (self.object is None or self.object == triple.object)
        )

    @property
    def bound_positions(self) -> int:
        """Number of non-wildcard positions (0-3)."""
        return sum(term is not None for term in self)

    def __str__(self) -> str:
        def show(term: Optional[Term]) -> str:
            return "?" if term is None else term.n3()

        return f"({show(self.subject)} {show(self.predicate)} {show(self.object)})"
