"""N-Triples parsing and serialisation.

A line-oriented format: one triple per line, terms in full.  This is the
interchange format used by the dataset generators' dump/load round-trip
and by the property-based serialisation tests.
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator, Union

from .graph import Graph
from .terms import BNode, Literal, RDFObject, Subject, URI
from .triple import Triple

__all__ = [
    "NTriplesError",
    "parse_ntriples",
    "parse_ntriples_line",
    "serialize_ntriples",
    "load_ntriples",
    "dump_ntriples",
]


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


_UNESCAPES = {
    "\\": "\\",
    '"': '"',
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "b": "\b",
    "f": "\f",
}


class _LineScanner:
    """Cursor over a single N-Triples line."""

    def __init__(self, text: str, line_number: int | None = None):
        self.text = text
        self.pos = 0
        self.line_number = line_number

    def error(self, message: str) -> NTriplesError:
        return NTriplesError(f"{message} (at column {self.pos})", self.line_number)

    def skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    def read_uri(self) -> URI:
        self.expect("<")
        end = self.text.find(">", self.pos)
        if end < 0:
            raise self.error("unterminated URI")
        raw = self.text[self.pos : end]
        self.pos = end + 1
        try:
            return URI(_unescape(raw, self))
        except ValueError as exc:
            raise self.error(str(exc)) from exc

    def read_bnode(self) -> BNode:
        self.expect("_")
        self.expect(":")
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-."
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("empty blank node label")
        return BNode(self.text[start : self.pos])

    def read_quoted_string(self) -> str:
        self.expect('"')
        out: list[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated string literal")
            char = self.text[self.pos]
            if char == '"':
                self.pos += 1
                return "".join(out)
            if char == "\\":
                self.pos += 1
                out.append(self._read_escape())
            else:
                out.append(char)
                self.pos += 1

    def _read_escape(self) -> str:
        if self.at_end():
            raise self.error("dangling escape")
        char = self.text[self.pos]
        self.pos += 1
        if char in _UNESCAPES:
            return _UNESCAPES[char]
        if char == "u":
            return self._read_hex(4)
        if char == "U":
            return self._read_hex(8)
        raise self.error(f"unknown escape: \\{char}")

    def _read_hex(self, width: int) -> str:
        digits = self.text[self.pos : self.pos + width]
        if len(digits) < width:
            raise self.error("truncated unicode escape")
        try:
            code = int(digits, 16)
        except ValueError as exc:
            raise self.error(f"bad unicode escape: {digits!r}") from exc
        self.pos += width
        return chr(code)

    def read_literal(self) -> Literal:
        lexical = self.read_quoted_string()
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] == "-"
            ):
                self.pos += 1
            tag = self.text[start : self.pos]
            if not tag:
                raise self.error("empty language tag")
            try:
                return Literal(lexical, language=tag)
            except ValueError as exc:
                raise self.error(str(exc)) from exc
        if self.text.startswith("^^", self.pos):
            self.pos += 2
            datatype = self.read_uri()
            return Literal(lexical, datatype=datatype.value)
        return Literal(lexical)


def _unescape(raw: str, scanner: _LineScanner) -> str:
    if "\\" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        char = raw[i]
        if char != "\\":
            out.append(char)
            i += 1
            continue
        i += 1
        if i >= len(raw):
            raise scanner.error("dangling escape in URI")
        esc = raw[i]
        i += 1
        if esc in _UNESCAPES:
            out.append(_UNESCAPES[esc])
        elif esc == "u":
            out.append(chr(int(raw[i : i + 4], 16)))
            i += 4
        elif esc == "U":
            out.append(chr(int(raw[i : i + 8], 16)))
            i += 8
        else:
            raise scanner.error(f"unknown escape in URI: \\{esc}")
    return "".join(out)


def parse_ntriples_line(
    line: str, line_number: int | None = None
) -> Triple | None:
    """Parse one N-Triples line; returns None for blank/comment lines."""
    scanner = _LineScanner(line.rstrip("\n"), line_number)
    scanner.skip_whitespace()
    if scanner.at_end() or scanner.peek() == "#":
        return None
    subject: Subject
    if scanner.peek() == "<":
        subject = scanner.read_uri()
    elif scanner.peek() == "_":
        subject = scanner.read_bnode()
    else:
        raise scanner.error("expected URI or blank node subject")
    scanner.skip_whitespace()
    predicate = scanner.read_uri()
    scanner.skip_whitespace()
    object: RDFObject
    char = scanner.peek()
    if char == "<":
        object = scanner.read_uri()
    elif char == "_":
        object = scanner.read_bnode()
    elif char == '"':
        object = scanner.read_literal()
    else:
        raise scanner.error("expected URI, blank node or literal object")
    scanner.skip_whitespace()
    scanner.expect(".")
    scanner.skip_whitespace()
    if not scanner.at_end() and scanner.peek() != "#":
        raise scanner.error("trailing content after '.'")
    return Triple(subject, predicate, object)


def parse_ntriples(source: Union[str, IO[str]]) -> Iterator[Triple]:
    """Parse N-Triples from a string or text stream, yielding triples.

    Only ``\\n`` terminates a statement — ``str.splitlines`` would also
    split on unicode line separators that may occur (escaped-free) inside
    literals.
    """
    lines = source.split("\n") if isinstance(source, str) else source
    for number, line in enumerate(lines, start=1):
        triple = parse_ntriples_line(line, number)
        if triple is not None:
            yield triple


def serialize_ntriples(triples: Iterable[Triple], sort: bool = False) -> str:
    """Serialise triples to an N-Triples document."""
    lines = [triple.n3() for triple in triples]
    if sort:
        lines.sort()
    return "".join(line + "\n" for line in lines)


def load_ntriples(path: str, name: str = "") -> Graph:
    """Load an N-Triples file into a new :class:`Graph`."""
    graph = Graph(name=name or path)
    with open(path, encoding="utf-8") as handle:
        graph.update(parse_ntriples(handle))
    return graph


def dump_ntriples(graph: Graph, path: str, sort: bool = True) -> int:
    """Write a graph to an N-Triples file; returns the triple count."""
    text = serialize_ntriples(graph.triples(), sort=sort)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return len(graph)
