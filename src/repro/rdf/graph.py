"""An indexed, in-memory RDF graph store.

This is the storage substrate underneath the SPARQL engine and, through it,
the simulated Virtuoso endpoint of :mod:`repro.endpoint`.  The store keeps
three hash indexes (SPO, POS, OSP) so that every triple pattern with at
least one bound position is answered without a full scan — the property the
ablation benchmark ``bench_ablation_indexes`` measures.

The graph also maintains a monotonically increasing ``version`` that the
heavy-query store (:mod:`repro.perf.hvs`) uses for cache invalidation: the
paper specifies "The HVS is cleared on any update to the eLinda knowledge
bases" (Section 4).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set

from ..obs.metrics import REGISTRY
from .terms import Literal, RDFObject, Subject, URI
from .triple import Triple, TriplePattern

__all__ = ["Graph"]

_INDEX_LOOKUPS_TOTAL = REGISTRY.counter(
    "repro_graph_index_lookups_total",
    "Triple-pattern lookups by the index that answered them",
    labelnames=("index",),
)
_LOOKUP_SPO = _INDEX_LOOKUPS_TOTAL.labels(index="spo")
_LOOKUP_POS = _INDEX_LOOKUPS_TOTAL.labels(index="pos")
_LOOKUP_OSP = _INDEX_LOOKUPS_TOTAL.labels(index="osp")
_LOOKUP_FULL_SCAN = _INDEX_LOOKUPS_TOTAL.labels(index="full_scan")


def _index_add(
    index: Dict, key1, key2, key3
) -> bool:
    """Add ``key3`` under ``index[key1][key2]``; return True if new."""
    second = index.get(key1)
    if second is None:
        second = {}
        index[key1] = second
    third = second.get(key2)
    if third is None:
        third = set()
        second[key2] = third
    if key3 in third:
        return False
    third.add(key3)
    return True


def _index_remove(index: Dict, key1, key2, key3) -> None:
    second = index[key1]
    third = second[key2]
    third.discard(key3)
    if not third:
        del second[key2]
        if not second:
            del index[key1]


class Graph:
    """A finite collection of RDF triples with pattern-matching access.

    >>> from repro.rdf import URI, Literal, Graph
    >>> g = Graph()
    >>> _ = g.add(URI("http://ex/s"), URI("http://ex/p"), Literal("v"))
    >>> len(g)
    1
    """

    __slots__ = ("_spo", "_pos", "_osp", "_size", "_version", "_stats", "name")

    def __init__(self, triples: Iterable[Triple] = (), name: str = ""):
        # _spo: subject -> predicate -> set of objects
        self._spo: Dict[Subject, Dict[URI, Set[RDFObject]]] = {}
        # _pos: predicate -> object -> set of subjects
        self._pos: Dict[URI, Dict[RDFObject, Set[Subject]]] = {}
        # _osp: object -> subject -> set of predicates
        self._osp: Dict[RDFObject, Dict[Subject, Set[URI]]] = {}
        self._size = 0
        self._version = 0
        self._stats = None  # cached GraphStatistics for self._version
        self.name = name
        for triple in triples:
            self.add(*triple)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, subject: Subject, predicate: URI, object: RDFObject) -> bool:
        """Add a triple; returns True if it was not already present."""
        triple = Triple.create(subject, predicate, object)
        if not _index_add(self._spo, triple.subject, triple.predicate, triple.object):
            return False
        _index_add(self._pos, triple.predicate, triple.object, triple.subject)
        _index_add(self._osp, triple.object, triple.subject, triple.predicate)
        self._size += 1
        self._version += 1
        return True

    def add_triple(self, triple: Triple) -> bool:
        """Add a :class:`Triple`; returns True if it was not already present."""
        return self.add(triple.subject, triple.predicate, triple.object)

    def update(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually added."""
        added = 0
        for triple in triples:
            if self.add_triple(triple):
                added += 1
        return added

    def remove(self, subject: Subject, predicate: URI, object: RDFObject) -> bool:
        """Remove a triple; returns True if it was present."""
        objects = self._spo.get(subject, {}).get(predicate)
        if objects is None or object not in objects:
            return False
        _index_remove(self._spo, subject, predicate, object)
        _index_remove(self._pos, predicate, object, subject)
        _index_remove(self._osp, object, subject, predicate)
        self._size -= 1
        self._version += 1
        return True

    def remove_pattern(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[URI] = None,
        object: Optional[RDFObject] = None,
    ) -> int:
        """Remove all triples matching the pattern; returns the count."""
        doomed = list(self.triples(subject, predicate, object))
        for triple in doomed:
            self.remove(*triple)
        return len(doomed)

    def clear(self) -> None:
        """Remove all triples (bumps the version once)."""
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0
        self._version += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter, used for HVS invalidation."""
        return self._version

    def statistics(self):
        """The cached cardinality summary for the current version.

        Rebuilt lazily after any mutation (the cache is keyed by
        ``version``); feeds the cost-based passes of
        :mod:`repro.sparql.optimizer`.
        """
        from .stats import GraphStatistics

        cached = self._stats
        if cached is None or cached.version != self._version:
            cached = GraphStatistics.build(self)
            self._stats = cached
        return cached

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, tuple) or len(triple) != 3:
            return False
        subject, predicate, object = triple
        return object in self._spo.get(subject, {}).get(predicate, ())

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label} with {self._size} triples>"

    # ------------------------------------------------------------------
    # Pattern matching
    # ------------------------------------------------------------------

    def triples(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[URI] = None,
        object: Optional[RDFObject] = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the pattern (``None`` = wildcard).

        The most selective index available for the pattern is used; a full
        scan happens only for the all-wildcard pattern.
        """
        s, p, o = subject, predicate, object
        if s is not None:
            # (s, ?, o) is the one subject-bound shape answered from OSP.
            (_LOOKUP_OSP if (p is None and o is not None) else _LOOKUP_SPO).inc()
        elif p is not None:
            _LOOKUP_POS.inc()
        elif o is not None:
            _LOOKUP_OSP.inc()
        else:
            _LOOKUP_FULL_SCAN.inc()
        if s is not None:
            by_predicate = self._spo.get(s)
            if by_predicate is None:
                return
            if p is not None:
                objects = by_predicate.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield Triple(s, p, o)
                    return
                for obj in objects:
                    yield Triple(s, p, obj)
                return
            if o is not None:
                predicates = self._osp.get(o, {}).get(s)
                if predicates is None:
                    return
                for pred in predicates:
                    yield Triple(s, pred, o)
                return
            for pred, objects in by_predicate.items():
                for obj in objects:
                    yield Triple(s, pred, obj)
            return
        if p is not None:
            by_object = self._pos.get(p)
            if by_object is None:
                return
            if o is not None:
                subjects = by_object.get(o)
                if subjects is None:
                    return
                for subj in subjects:
                    yield Triple(subj, p, o)
                return
            for obj, subjects in by_object.items():
                for subj in subjects:
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            by_subject = self._osp.get(o)
            if by_subject is None:
                return
            for subj, predicates in by_subject.items():
                for pred in predicates:
                    yield Triple(subj, pred, o)
            return
        for subj, by_predicate in self._spo.items():
            for pred, objects in by_predicate.items():
                for obj in objects:
                    yield Triple(subj, pred, obj)

    def match(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Yield triples matching a :class:`TriplePattern`."""
        return self.triples(pattern.subject, pattern.predicate, pattern.object)

    def count(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[URI] = None,
        object: Optional[RDFObject] = None,
    ) -> int:
        """Count triples matching the pattern without materialising them."""
        s, p, o = subject, predicate, object
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if s is None and p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and p is None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        return sum(1 for _ in self.triples(s, p, o))

    # ------------------------------------------------------------------
    # Single-position accessors
    # ------------------------------------------------------------------

    def subjects(
        self, predicate: Optional[URI] = None, object: Optional[RDFObject] = None
    ) -> Iterator[Subject]:
        """Yield distinct subjects of triples matching ``(?, predicate, object)``."""
        if predicate is not None and object is not None:
            yield from self._pos.get(predicate, {}).get(object, ())
            return
        seen: Set[Subject] = set()
        for triple in self.triples(None, predicate, object):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def predicates(
        self, subject: Optional[Subject] = None, object: Optional[RDFObject] = None
    ) -> Iterator[URI]:
        """Yield distinct predicates of triples matching ``(subject, ?, object)``."""
        if subject is not None and object is not None:
            yield from self._osp.get(object, {}).get(subject, ())
            return
        if subject is not None and object is None:
            yield from self._spo.get(subject, {})
            return
        if subject is None and object is None:
            yield from self._pos
            return
        seen: Set[URI] = set()
        for triple in self.triples(subject, None, object):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def objects(
        self, subject: Optional[Subject] = None, predicate: Optional[URI] = None
    ) -> Iterator[RDFObject]:
        """Yield distinct objects of triples matching ``(subject, predicate, ?)``."""
        if subject is not None and predicate is not None:
            yield from self._spo.get(subject, {}).get(predicate, ())
            return
        seen: Set[RDFObject] = set()
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def value(
        self, subject: Optional[Subject] = None, predicate: Optional[URI] = None,
        object: Optional[RDFObject] = None,
    ) -> Optional[RDFObject]:
        """Return one term filling the single ``None`` position, or None.

        Exactly one of the three arguments must be None.
        """
        wildcards = sum(term is None for term in (subject, predicate, object))
        if wildcards != 1:
            raise ValueError("value() requires exactly one wildcard position")
        for triple in self.triples(subject, predicate, object):
            if subject is None:
                return triple.subject
            if predicate is None:
                return triple.predicate
            return triple.object
        return None

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def uris(self) -> Set[URI]:
        """The set U(G) of URIs occurring in the graph (paper, Section 2)."""
        found: Set[URI] = set()
        for triple in self.triples():
            if isinstance(triple.subject, URI):
                found.add(triple.subject)
            found.add(triple.predicate)
            if isinstance(triple.object, URI):
                found.add(triple.object)
        return found

    def literals(self) -> Set[Literal]:
        """The set L(G) of literals occurring in the graph."""
        return {
            triple.object
            for triple in self.triples()
            if isinstance(triple.object, Literal)
        }

    def copy(self, name: str = "") -> "Graph":
        """A shallow copy (terms are immutable, so this is a full copy)."""
        return Graph(self.triples(), name=name or self.name)

    def windows(self, size: int) -> Iterator["Graph"]:
        """Partition the graph into consecutive windows of ``size`` triples.

        This backs the paper's *incremental evaluation*: eLinda "builds the
        chart of an expansion by computing it on the first N triples ... It
        then continues to compute the query on the next N triples and
        aggregates the results in the frontend" (Section 4).  The iteration
        order is the store's deterministic index order.
        """
        if size <= 0:
            raise ValueError("window size must be positive")
        batch: list[Triple] = []
        for triple in self.triples():
            batch.append(triple)
            if len(batch) == size:
                yield Graph(batch)
                batch = []
        if batch:
            yield Graph(batch)
