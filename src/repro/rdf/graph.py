"""A dictionary-encoded, indexed, in-memory RDF graph store.

This is the storage substrate underneath the SPARQL engine and, through
it, the simulated Virtuoso endpoint of :mod:`repro.endpoint`.  Since PR 5
the store is *dictionary encoded*: every term is interned once in a
:class:`~repro.rdf.dictionary.TermDictionary` and the three indexes (SPO,
POS, OSP) are nested dicts over dense integer IDs whose innermost level
is a **sorted int list** — 8 bytes per entry instead of a hash-set of
term objects, and deterministic ID-order iteration in every position.

Two access planes are exposed:

- :meth:`Graph.triples` / the single-position accessors speak
  :class:`~repro.rdf.terms.Term` objects, exactly as before — they
  decode on the fly, so every existing consumer (recursive evaluator,
  exploration engine, serialisers) is unchanged.
- :meth:`Graph.triples_ids` yields raw ``(s, p, o)`` ID tuples with no
  term materialization at all; the physical operator layer
  (:mod:`repro.sparql.physical`) executes joins, DISTINCT, and grouping
  entirely in this ID space and materializes terms only at the
  projection boundary.

Both planes iterate the *same* underlying structures, so encoded and
term-object execution produce identical rows in identical order.

The graph also maintains a monotonically increasing ``version`` that the
heavy-query store (:mod:`repro.perf.hvs`) uses for cache invalidation:
the paper specifies "The HVS is cleared on any update to the eLinda
knowledge bases" (Section 4).  Batch ingestion (:meth:`Graph.bulk_load`,
:meth:`Graph.bulk`) coalesces the version bump to once per batch so a
load no longer invalidates statistics and plan caches N times.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..obs.metrics import REGISTRY
from .dictionary import KIND_STRIDE, TermDictionary
from .terms import Literal, RDFObject, Subject, URI
from .triple import Triple, TriplePattern

__all__ = ["Graph"]

_INDEX_LOOKUPS_TOTAL = REGISTRY.counter(
    "repro_graph_index_lookups_total",
    "Triple-pattern lookups by the index that answered them",
    labelnames=("index",),
)
_LOOKUP_SPO = _INDEX_LOOKUPS_TOTAL.labels(index="spo")
_LOOKUP_POS = _INDEX_LOOKUPS_TOTAL.labels(index="pos")
_LOOKUP_OSP = _INDEX_LOOKUPS_TOTAL.labels(index="osp")
_LOOKUP_FULL_SCAN = _INDEX_LOOKUPS_TOTAL.labels(index="full_scan")

_BULK_LOADS_TOTAL = REGISTRY.counter(
    "repro_graph_bulk_loads_total",
    "Batched ingestions (one coalesced version bump each)",
)

#: Sentinel ID for "this term is bound but unknown to the dictionary" —
#: it can never match, but routing it through the normal index branches
#: keeps lookup metrics and early-exit behaviour identical.
_UNKNOWN = -1

#: Kind tag of literal IDs (see :mod:`repro.rdf.dictionary`).
_LITERAL_BASE = 2 * KIND_STRIDE

_EMPTY_DICT: Dict = {}


def _sorted_contains(values: List[int], value: int) -> bool:
    """Membership test on a sorted int list."""
    index = bisect_left(values, value)
    return index < len(values) and values[index] == value


def _index_add(index: Dict, key1: int, key2: int, key3: int) -> bool:
    """Insert ``key3`` into the sorted list at ``index[key1][key2]``;
    returns True if it was not already present."""
    second = index.get(key1)
    if second is None:
        index[key1] = {key2: [key3]}
        return True
    third = second.get(key2)
    if third is None:
        second[key2] = [key3]
        return True
    position = bisect_left(third, key3)
    if position < len(third) and third[position] == key3:
        return False
    third.insert(position, key3)
    return True


def _index_remove(index: Dict, key1: int, key2: int, key3: int) -> None:
    second = index[key1]
    third = second[key2]
    position = bisect_left(third, key3)
    if position < len(third) and third[position] == key3:
        del third[position]
    if not third:
        del second[key2]
        if not second:
            del index[key1]


class Graph:
    """A finite collection of RDF triples with pattern-matching access.

    >>> from repro.rdf import URI, Literal, Graph
    >>> g = Graph()
    >>> _ = g.add(URI("http://ex/s"), URI("http://ex/p"), Literal("v"))
    >>> len(g)
    1
    """

    __slots__ = (
        "_dict",
        "_spo",
        "_pos",
        "_osp",
        "_size",
        "_version",
        "_stats",
        "_bulk_depth",
        "_bulk_dirty",
        "_listeners",
        "name",
    )

    def __init__(self, triples: Iterable[Triple] = (), name: str = ""):
        #: the term ↔ ID dictionary; append-only for the graph's lifetime.
        self._dict = TermDictionary()
        # _spo: subject id -> predicate id -> sorted list of object ids
        self._spo: Dict[int, Dict[int, List[int]]] = {}
        # _pos: predicate id -> object id -> sorted list of subject ids
        self._pos: Dict[int, Dict[int, List[int]]] = {}
        # _osp: object id -> subject id -> sorted list of predicate ids
        self._osp: Dict[int, Dict[int, List[int]]] = {}
        self._size = 0
        self._version = 0
        self._stats = None  # cached GraphStatistics for self._version
        self._bulk_depth = 0
        self._bulk_dirty = False
        # Mutation-delta listeners (e.g. materialized views).  Each is
        # notified with ID triples *after* the indexes are updated, so a
        # listener reading the graph back sees the post-mutation state.
        self._listeners: List = []
        self.name = name
        if triples:
            self.bulk_load(triples)

    # ------------------------------------------------------------------
    # Encoding plane
    # ------------------------------------------------------------------

    @property
    def dictionary(self) -> TermDictionary:
        """The term ↔ ID dictionary backing this graph's indexes."""
        return self._dict

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _bump_version(self) -> None:
        if self._bulk_depth:
            self._bulk_dirty = True
        else:
            self._version += 1

    # ------------------------------------------------------------------
    # Mutation-delta listeners
    # ------------------------------------------------------------------

    def add_listener(self, listener) -> None:
        """Register a mutation-delta listener.

        A listener is any object with ``on_added(s, p, o)``,
        ``on_removed(s, p, o)`` and ``on_cleared()`` methods taking
        dictionary IDs.  It is called once per triple that actually
        changed (never for no-op adds/removes), after the indexes are
        updated — this is how :class:`repro.perf.views.MaterializedViews`
        stays current without version-flush rebuilds.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        """Unregister a previously added mutation-delta listener."""
        self._listeners.remove(listener)

    def add(self, subject: Subject, predicate: URI, object: RDFObject) -> bool:
        """Add a triple; returns True if it was not already present."""
        triple = Triple.create(subject, predicate, object)
        encode = self._dict.encode
        s = encode(triple.subject)
        p = encode(triple.predicate)
        o = encode(triple.object)
        if not _index_add(self._spo, s, p, o):
            return False
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        self._size += 1
        self._bump_version()
        for listener in self._listeners:
            listener.on_added(s, p, o)
        return True

    def add_triple(self, triple: Triple) -> bool:
        """Add a :class:`Triple`; returns True if it was not already present."""
        return self.add(triple.subject, triple.predicate, triple.object)

    def update(self, triples: Iterable[Triple]) -> int:
        """Add many triples with one version bump; returns the number added."""
        return self.bulk_load(triples)

    @contextmanager
    def bulk(self):
        """Context manager coalescing version bumps across many mutations.

        Inside the block every ``add``/``remove`` applies immediately (so
        interleaved reads see the data), but the ``version`` counter —
        the invalidation signal for :class:`GraphStatistics`, the plan
        cache, and the HVS — moves at most once, when the block exits.
        Nestable; only the outermost exit bumps.
        """
        self._bulk_depth += 1
        try:
            yield self
        finally:
            self._bulk_depth -= 1
            if self._bulk_depth == 0 and self._bulk_dirty:
                self._bulk_dirty = False
                self._version += 1
                _BULK_LOADS_TOTAL.inc()

    def bulk_load(self, triples: Iterable) -> int:
        """Batch-ingest triples: one version bump, amortised index builds.

        Accepts any iterable of ``(subject, predicate, object)`` term
        sequences (:class:`Triple` included).  Inner index lists are
        appended and sorted once per touched key instead of insertion-
        sorted per triple, so dictionary growth and index maintenance are
        amortised across the batch.  Returns the number of triples that
        were actually new.
        """
        encode = self._dict.encode
        spo = self._spo
        pending: Dict[Tuple[int, int], List[int]] = {}
        for item in triples:
            subject, predicate, object = item
            triple = Triple.create(subject, predicate, object)
            key = (encode(triple.subject), encode(triple.predicate))
            values = pending.get(key)
            if values is None:
                pending[key] = [encode(triple.object)]
            else:
                values.append(encode(triple.object))
        added = 0
        fresh_pos: Dict[Tuple[int, int], List[int]] = {}
        fresh_osp: Dict[Tuple[int, int], List[int]] = {}
        # Listener notifications are deferred until all three indexes are
        # consistent, then delivered triple-by-triple.
        deltas: List[Tuple[int, int, int]] = []
        for (s, p), oids in pending.items():
            by_predicate = spo.get(s)
            if by_predicate is None:
                by_predicate = {}
                spo[s] = by_predicate
            existing = by_predicate.get(p)
            if existing is None:
                fresh = sorted(set(oids))
                by_predicate[p] = fresh
            else:
                existing_set = set(existing)
                fresh = [o for o in set(oids) if o not in existing_set]
                if not fresh:
                    continue
                existing.extend(fresh)
                existing.sort()
            added += len(fresh)
            for o in fresh:
                fresh_pos.setdefault((p, o), []).append(s)
                fresh_osp.setdefault((o, s), []).append(p)
                if self._listeners:
                    deltas.append((s, p, o))
        for index, additions in ((self._pos, fresh_pos), (self._osp, fresh_osp)):
            for (k1, k2), values in additions.items():
                second = index.get(k1)
                if second is None:
                    second = {}
                    index[k1] = second
                third = second.get(k2)
                if third is None:
                    second[k2] = sorted(values)
                else:
                    third.extend(values)
                    third.sort()
        if added:
            self._size += added
            self._bump_version()
            if not self._bulk_depth:
                _BULK_LOADS_TOTAL.inc()
            for s, p, o in deltas:
                for listener in self._listeners:
                    listener.on_added(s, p, o)
        return added

    def remove(self, subject: Subject, predicate: URI, object: RDFObject) -> bool:
        """Remove a triple; returns True if it was present.

        The terms stay interned in the dictionary (IDs are stable for
        the graph's lifetime); only the index entries go away.
        """
        lookup = self._dict.lookup
        s = lookup(subject)
        p = lookup(predicate)
        o = lookup(object)
        if s is None or p is None or o is None:
            return False
        objects = self._spo.get(s, _EMPTY_DICT).get(p)
        if objects is None or not _sorted_contains(objects, o):
            return False
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)
        self._size -= 1
        self._bump_version()
        for listener in self._listeners:
            listener.on_removed(s, p, o)
        return True

    def remove_pattern(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[URI] = None,
        object: Optional[RDFObject] = None,
    ) -> int:
        """Remove all triples matching the pattern; returns the count."""
        doomed = list(self.triples(subject, predicate, object))
        for triple in doomed:
            self.remove(*triple)
        return len(doomed)

    def clear(self) -> None:
        """Remove all triples (bumps the version once)."""
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0
        self._bump_version()
        for listener in self._listeners:
            listener.on_cleared()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter, used for HVS invalidation."""
        return self._version

    def statistics(self):
        """The cached cardinality summary for the current version.

        Rebuilt lazily after any mutation (the cache is keyed by
        ``version``); feeds the cost-based passes of
        :mod:`repro.sparql.optimizer`.
        """
        from .stats import GraphStatistics

        cached = self._stats
        if cached is None or cached.version != self._version:
            cached = GraphStatistics.build(self)
            self._stats = cached
        return cached

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, tuple) or len(triple) != 3:
            return False
        subject, predicate, object = triple
        lookup = self._dict.lookup
        s = lookup(subject)
        p = lookup(predicate)
        o = lookup(object)
        if s is None or p is None or o is None:
            return False
        objects = self._spo.get(s, _EMPTY_DICT).get(p)
        return objects is not None and _sorted_contains(objects, o)

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label} with {self._size} triples>"

    # ------------------------------------------------------------------
    # Pattern matching — ID plane
    # ------------------------------------------------------------------

    def triples_ids(
        self,
        s: Optional[int] = None,
        p: Optional[int] = None,
        o: Optional[int] = None,
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(s, p, o)`` ID tuples matching the pattern.

        ``None`` is a wildcard; the most selective index available for
        the pattern is used, and a full scan happens only for the
        all-wildcard pattern.  This is the zero-materialization plane
        the physical operators execute on.

        Iteration order is **sorted ID order in every position** —
        outer dict levels are walked in sorted-key order and the leaf
        lists are kept sorted — so two stores holding the same triples
        enumerate any pattern identically regardless of insertion
        order.  This is the canonical order the mmap'd snapshot store
        (:mod:`repro.rdf.snapshot`) answers with via binary search, and
        what makes snapshot execution row-and-order equivalent to the
        in-memory store by construction.
        """
        if s is not None:
            # (s, ?, o) is the one subject-bound shape answered from OSP.
            (_LOOKUP_OSP if (p is None and o is not None) else _LOOKUP_SPO).inc()
        elif p is not None:
            _LOOKUP_POS.inc()
        elif o is not None:
            _LOOKUP_OSP.inc()
        else:
            _LOOKUP_FULL_SCAN.inc()
        if s is not None:
            by_predicate = self._spo.get(s)
            if by_predicate is None:
                return
            if p is not None:
                objects = by_predicate.get(p)
                if objects is None:
                    return
                if o is not None:
                    if _sorted_contains(objects, o):
                        yield (s, p, o)
                    return
                for obj in objects:
                    yield (s, p, obj)
                return
            if o is not None:
                predicates = self._osp.get(o, _EMPTY_DICT).get(s)
                if predicates is None:
                    return
                for pred in predicates:
                    yield (s, pred, o)
                return
            for pred in sorted(by_predicate):
                for obj in by_predicate[pred]:
                    yield (s, pred, obj)
            return
        if p is not None:
            by_object = self._pos.get(p)
            if by_object is None:
                return
            if o is not None:
                subjects = by_object.get(o)
                if subjects is None:
                    return
                for subj in subjects:
                    yield (subj, p, o)
                return
            for obj in sorted(by_object):
                for subj in by_object[obj]:
                    yield (subj, p, obj)
            return
        if o is not None:
            by_subject = self._osp.get(o)
            if by_subject is None:
                return
            for subj in sorted(by_subject):
                for pred in by_subject[subj]:
                    yield (subj, pred, o)
            return
        spo = self._spo
        for subj in sorted(spo):
            by_predicate = spo[subj]
            for pred in sorted(by_predicate):
                for obj in by_predicate[pred]:
                    yield (subj, pred, obj)

    def count_ids(
        self,
        s: Optional[int] = None,
        p: Optional[int] = None,
        o: Optional[int] = None,
    ) -> int:
        """Count matches of an ID pattern without materialising them."""
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, _EMPTY_DICT).get(p, ()))
        if s is None and p is not None and o is not None:
            return len(self._pos.get(p, _EMPTY_DICT).get(o, ()))
        if s is not None and p is None and o is not None:
            return len(self._osp.get(o, _EMPTY_DICT).get(s, ()))
        return sum(1 for _ in self.triples_ids(s, p, o))

    def _encode_pattern(
        self,
        subject: Optional[Subject],
        predicate: Optional[URI],
        object: Optional[RDFObject],
    ) -> Tuple[Optional[int], Optional[int], Optional[int]]:
        """Map a term pattern to an ID pattern.

        A bound term unknown to the dictionary maps to the impossible ID
        :data:`_UNKNOWN`, which matches nothing but still routes through
        the same index branch (for identical metrics and early exits).
        """
        lookup = self._dict.lookup
        s = None
        if subject is not None:
            s = lookup(subject)
            if s is None:
                s = _UNKNOWN
        p = None
        if predicate is not None:
            p = lookup(predicate)
            if p is None:
                p = _UNKNOWN
        o = None
        if object is not None:
            o = lookup(object)
            if o is None:
                o = _UNKNOWN
        return s, p, o

    # ------------------------------------------------------------------
    # Pattern matching — term plane
    # ------------------------------------------------------------------

    def triples(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[URI] = None,
        object: Optional[RDFObject] = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the pattern (``None`` = wildcard).

        Decodes from the ID plane on the fly; iteration order is the ID
        plane's deterministic order, so term-level and encoded execution
        see the same sequence.
        """
        s, p, o = self._encode_pattern(subject, predicate, object)
        decode_triple = self._dict.decode_triple
        for ids in self.triples_ids(s, p, o):
            yield Triple(*decode_triple(ids))

    def match(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Yield triples matching a :class:`TriplePattern`."""
        return self.triples(pattern.subject, pattern.predicate, pattern.object)

    def count(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[URI] = None,
        object: Optional[RDFObject] = None,
    ) -> int:
        """Count triples matching the pattern without materialising them."""
        s, p, o = self._encode_pattern(subject, predicate, object)
        return self.count_ids(s, p, o)

    # ------------------------------------------------------------------
    # Single-position accessors
    # ------------------------------------------------------------------

    def subjects(
        self, predicate: Optional[URI] = None, object: Optional[RDFObject] = None
    ) -> Iterator[Subject]:
        """Yield distinct subjects of triples matching ``(?, predicate, object)``."""
        decode = self._dict.decode
        if predicate is not None and object is not None:
            _, p, o = self._encode_pattern(None, predicate, object)
            for s in self._pos.get(p, _EMPTY_DICT).get(o, ()):
                yield decode(s)
            return
        seen: Set[int] = set()
        s_pat, p_pat, o_pat = self._encode_pattern(None, predicate, object)
        for s, _, _ in self.triples_ids(s_pat, p_pat, o_pat):
            if s not in seen:
                seen.add(s)
                yield decode(s)

    def predicates(
        self, subject: Optional[Subject] = None, object: Optional[RDFObject] = None
    ) -> Iterator[URI]:
        """Yield distinct predicates of triples matching ``(subject, ?, object)``."""
        decode = self._dict.decode
        s_pat, _, o_pat = self._encode_pattern(subject, None, object)
        if subject is not None and object is not None:
            for p in self._osp.get(o_pat, _EMPTY_DICT).get(s_pat, ()):
                yield decode(p)
            return
        if subject is not None and object is None:
            for p in sorted(self._spo.get(s_pat, _EMPTY_DICT)):
                yield decode(p)
            return
        if subject is None and object is None:
            for p in sorted(self._pos):
                yield decode(p)
            return
        seen: Set[int] = set()
        for _, p, _ in self.triples_ids(s_pat, None, o_pat):
            if p not in seen:
                seen.add(p)
                yield decode(p)

    def objects(
        self, subject: Optional[Subject] = None, predicate: Optional[URI] = None
    ) -> Iterator[RDFObject]:
        """Yield distinct objects of triples matching ``(subject, predicate, ?)``."""
        decode = self._dict.decode
        s_pat, p_pat, _ = self._encode_pattern(subject, predicate, None)
        if subject is not None and predicate is not None:
            for o in self._spo.get(s_pat, _EMPTY_DICT).get(p_pat, ()):
                yield decode(o)
            return
        seen: Set[int] = set()
        for _, _, o in self.triples_ids(s_pat, p_pat, None):
            if o not in seen:
                seen.add(o)
                yield decode(o)

    def value(
        self, subject: Optional[Subject] = None, predicate: Optional[URI] = None,
        object: Optional[RDFObject] = None,
    ) -> Optional[RDFObject]:
        """Return one term filling the single ``None`` position, or None.

        Exactly one of the three arguments must be None.
        """
        wildcards = sum(term is None for term in (subject, predicate, object))
        if wildcards != 1:
            raise ValueError("value() requires exactly one wildcard position")
        for triple in self.triples(subject, predicate, object):
            if subject is None:
                return triple.subject
            if predicate is None:
                return triple.predicate
            return triple.object
        return None

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def uris(self) -> Set[URI]:
        """The set U(G) of URIs occurring in the graph (paper, Section 2).

        Derived from the index key sets, so only URI-kind IDs are ever
        decoded — the dictionary may hold interned terms that no longer
        (or never did) occur in a triple, and those are not included.
        """
        decode = self._dict.decode
        found: Set[URI] = set()
        for s in self._spo:
            if s < KIND_STRIDE:
                found.add(decode(s))
        for p in self._pos:
            found.add(decode(p))
        for o in self._osp:
            if o < KIND_STRIDE:
                found.add(decode(o))
        return found

    def literals(self) -> Set[Literal]:
        """The set L(G) of literals occurring in the graph."""
        decode = self._dict.decode
        return {decode(o) for o in self._osp if o >= _LITERAL_BASE}

    def copy(self, name: str = "") -> "Graph":
        """A deep copy with its own dictionary and indexes."""
        return Graph(self.triples(), name=name or self.name)

    def windows(self, size: int) -> Iterator["Graph"]:
        """Partition the graph into consecutive windows of ``size`` triples.

        This backs the paper's *incremental evaluation*: eLinda "builds the
        chart of an expansion by computing it on the first N triples ... It
        then continues to compute the query on the next N triples and
        aggregates the results in the frontend" (Section 4).  The iteration
        order is the store's deterministic index order.
        """
        if size <= 0:
            raise ValueError("window size must be positive")
        batch: list[Triple] = []
        for triple in self.triples():
            batch.append(triple)
            if len(batch) == size:
                yield Graph(batch)
                batch = []
        if batch:
            yield Graph(batch)
