"""The settings form (Section 3.1).

"The interface provides a setting form that allows a user to point the
tool to an online SPARQL endpoint such as DBpedia, YAGO, or
LinkedGeoData."  A footnote adds: "The current implementation assumes
Virtuoso endpoints."  The form validates its fields and builds the
endpoint stack — local mode wires in the eLinda router (HVS +
decomposer); remote compatibility mode can only use incremental
evaluation, since no preprocessing is possible on a remote store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..endpoint.base import Endpoint
from ..endpoint.clock import SimClock
from ..endpoint.cost import LOCAL_PROFILE
from ..endpoint.local import LocalEndpoint
from ..endpoint.virtuoso import RemoteEndpoint, SimulatedVirtuosoServer
from ..perf.decomposer import Decomposer
from ..perf.hvs import HeavyQueryStore
from ..perf.router import ElindaEndpoint
from ..perf.views import MaterializedViews
from ..rdf.terms import URI
from ..rdf.vocab import OWL
from .widgets import DEFAULT_COVERAGE_THRESHOLD

__all__ = ["SettingsForm", "SettingsError", "connect"]


class SettingsError(ValueError):
    """Raised for invalid settings-form input."""


@dataclass
class SettingsForm:
    """User-editable connection and exploration settings."""

    endpoint_url: str = "http://dbpedia.example.org/sparql"
    mode: str = "local"  # "local" (eLinda endpoint) or "remote" (compat)
    root_class: URI = field(default_factory=lambda: OWL.term("Thing"))
    coverage_threshold: float = DEFAULT_COVERAGE_THRESHOLD
    incremental_window: int = 2000
    incremental_steps: Optional[int] = None
    use_hvs: bool = True
    use_views: bool = True
    use_decomposer: bool = True
    #: Rows per page when chart queries run time-sliced (None = one-shot).
    chart_page_size: Optional[int] = None
    #: Executor time quantum for chart queries, in simulated milliseconds.
    chart_quantum_ms: Optional[float] = None

    def validate(self) -> None:
        """Raise :class:`SettingsError` for inconsistent settings."""
        if self.mode not in ("local", "remote"):
            raise SettingsError(f"unknown mode: {self.mode!r}")
        if not self.endpoint_url.startswith(("http://", "https://")):
            raise SettingsError(f"not an endpoint URL: {self.endpoint_url!r}")
        if not 0.0 <= self.coverage_threshold <= 1.0:
            raise SettingsError("coverage threshold must be in [0, 1]")
        if self.incremental_window <= 0:
            raise SettingsError("incremental window must be positive")
        if self.incremental_steps is not None and self.incremental_steps <= 0:
            raise SettingsError("incremental steps must be positive")
        if self.chart_page_size is not None and self.chart_page_size <= 0:
            raise SettingsError("chart page size must be positive")
        if self.chart_quantum_ms is not None and self.chart_quantum_ms <= 0:
            raise SettingsError("chart quantum must be positive")
        if self.mode == "remote" and (self.use_hvs or self.use_decomposer):
            # Remote compatibility mode: "we have no access to the actual
            # RDF graph and cannot execute any preprocessing" — only
            # incremental evaluation applies (Section 4).  ``use_views``
            # needs no such check: views are a local-mode layer and are
            # simply never built for a remote connection.
            raise SettingsError(
                "HVS/decomposer require local mode; remote compatibility "
                "mode supports incremental evaluation only"
            )


def connect(
    settings: SettingsForm,
    servers: Dict[str, SimulatedVirtuosoServer],
    clock: Optional[SimClock] = None,
    local_cost_model=LOCAL_PROFILE,
) -> Endpoint:
    """Build the endpoint stack the settings describe.

    ``servers`` maps endpoint URLs to simulated Virtuoso servers (the
    "online endpoints" of the demo).  Local mode mirrors the server's
    graph into a local engine and layers the eLinda router on top;
    remote mode returns the plain HTTP/JSON client.  ``local_cost_model``
    lets callers scale the mirror's simulated latency to the emulated
    dataset size (see :func:`repro.datasets.dbpedia.recommended_scale`).
    """
    settings.validate()
    server = servers.get(settings.endpoint_url)
    if server is None:
        raise SettingsError(f"no SPARQL endpoint at {settings.endpoint_url!r}")
    clock = clock or server.clock
    if settings.mode == "remote":
        return RemoteEndpoint(server)
    # Local mode: the eLinda endpoint owns a mirror of the knowledge base
    # ("Our eLinda endpoint contains mirrors of the common knowledge
    # bases", Section 4).
    mirror = LocalEndpoint(server.graph, clock=clock, cost_model=local_cost_model)
    hvs = HeavyQueryStore(clock=clock) if settings.use_hvs else None
    # One set of materialized tables backs both the views route and the
    # decomposer; a views-only or decomposer-only configuration builds
    # its own (the decomposer's build-once semantics come from a
    # non-tracking instance).
    views = (
        MaterializedViews(server.graph, clock=clock)
        if settings.use_views
        else None
    )
    decomposer = None
    if settings.use_decomposer:
        indexes = views if views is not None else MaterializedViews(
            server.graph, clock=clock, track=False
        )
        decomposer = Decomposer(indexes, clock=clock)
    return ElindaEndpoint(
        backend=mirror,
        hvs=hvs,
        views=views,
        decomposer=decomposer,
        use_hvs=settings.use_hvs,
        use_views=settings.use_views,
        use_decomposer=settings.use_decomposer,
    )
