"""Headless materialisation of eLinda's single-page UI (Section 3):
panes with three tabs, breadcrumb trails, chart widgets, the settings
form, and ASCII rendering."""

from .breadcrumbs import BreadcrumbTrail, Crumb, TRAIL_COLOURS
from .monitor import OperatorBreakdown, QueryMonitor, SourceSummary
from .pane import Pane, Tab
from .persistence import (
    SessionReplayError,
    load_actions,
    replay_session,
    save_session,
)
from .render import hover_box, render_bar_line, render_chart
from .session import ExplorerSession
from .settings import SettingsError, SettingsForm, connect
from .widgets import (
    CoverageThresholdWidget,
    DEFAULT_COVERAGE_THRESHOLD,
    DEFAULT_VISIBLE_BARS,
    VisibleRangeWidget,
)

__all__ = [
    "Pane",
    "Tab",
    "ExplorerSession",
    "OperatorBreakdown",
    "QueryMonitor",
    "SourceSummary",
    "save_session",
    "load_actions",
    "replay_session",
    "SessionReplayError",
    "SettingsForm",
    "SettingsError",
    "connect",
    "BreadcrumbTrail",
    "Crumb",
    "TRAIL_COLOURS",
    "VisibleRangeWidget",
    "CoverageThresholdWidget",
    "DEFAULT_COVERAGE_THRESHOLD",
    "DEFAULT_VISIBLE_BARS",
    "render_chart",
    "render_bar_line",
    "hover_box",
]
