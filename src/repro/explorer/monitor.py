"""Query-log monitoring.

The demo's second exploration kind presents "explorations that entail
heavy queries ... with the discussed solutions turned on and off"
(Section 5); this monitor summarises an endpoint's query log so that
effect is visible: how many queries each component answered, their
simulated latencies, and which queries crossed the heaviness threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..endpoint.base import Endpoint, QueryLogEntry
from ..perf.hvs import DEFAULT_HEAVY_THRESHOLD_MS

__all__ = ["SourceSummary", "OperatorBreakdown", "QueryMonitor"]


@dataclass(frozen=True)
class SourceSummary:
    """Aggregate statistics for one answer source."""

    source: str
    queries: int
    total_ms: float
    min_ms: float
    max_ms: float

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.queries if self.queries else 0.0


@dataclass(frozen=True)
class OperatorBreakdown:
    """Aggregate per-operator cost across traced log entries."""

    operator: str
    rows: int
    wall_ms: float
    invocations: int
    queries: int


class QueryMonitor:
    """Summarises an endpoint's query log."""

    def __init__(
        self,
        endpoint: Endpoint,
        heavy_threshold_ms: float = DEFAULT_HEAVY_THRESHOLD_MS,
    ):
        self.endpoint = endpoint
        self.heavy_threshold_ms = heavy_threshold_ms
        self._mark = 0
        self._mark_sentinel: Optional[QueryLogEntry] = None

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------

    def _mark_position(self) -> int:
        """The effective mark, robust against log truncation.

        The mark is a position *plus* the identity of the entry just
        before it.  If the endpoint's log was cleared (or rebuilt) since
        ``mark()``, the position alone would silently re-attribute old
        positions to new entries; detecting the sentinel mismatch resets
        the window to the whole log instead.
        """
        log = self.endpoint.query_log
        if self._mark == 0:
            return 0
        if self._mark > len(log) or log[self._mark - 1] is not self._mark_sentinel:
            return 0
        return self._mark

    def entries(self, since_mark: bool = False) -> List[QueryLogEntry]:
        """The log entries (optionally only those after the last mark)."""
        log = self.endpoint.query_log
        return log[self._mark_position() :] if since_mark else list(log)

    def mark(self) -> int:
        """Remember the current log position; ``entries(since_mark=True)``
        then reports only newer activity."""
        log = self.endpoint.query_log
        self._mark = len(log)
        self._mark_sentinel = log[-1] if log else None
        return self._mark

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def by_source(self, since_mark: bool = False) -> Dict[str, SourceSummary]:
        """Per-source query counts and latency aggregates."""
        buckets: Dict[str, List[QueryLogEntry]] = {}
        for entry in self.entries(since_mark):
            buckets.setdefault(entry.source, []).append(entry)
        return {
            source: SourceSummary(
                source=source,
                queries=len(group),
                total_ms=sum(e.elapsed_ms for e in group),
                min_ms=min(e.elapsed_ms for e in group),
                max_ms=max(e.elapsed_ms for e in group),
            )
            for source, group in buckets.items()
        }

    def heavy_queries(self, since_mark: bool = False) -> List[QueryLogEntry]:
        """Entries that crossed the heaviness threshold, slowest first."""
        heavy = [
            entry
            for entry in self.entries(since_mark)
            if entry.elapsed_ms > self.heavy_threshold_ms
        ]
        heavy.sort(key=lambda entry: -entry.elapsed_ms)
        return heavy

    def slowest(self, count: int = 5, since_mark: bool = False) -> List[QueryLogEntry]:
        """The ``count`` slowest queries."""
        ordered = sorted(
            self.entries(since_mark), key=lambda entry: -entry.elapsed_ms
        )
        return ordered[:count]

    def total_simulated_ms(self, since_mark: bool = False) -> float:
        return sum(entry.elapsed_ms for entry in self.entries(since_mark))

    def by_operator(
        self, since_mark: bool = False
    ) -> Dict[str, OperatorBreakdown]:
        """Latency broken down by algebra operator, across traced entries.

        Only entries whose endpoint ran with tracing enabled (e.g.
        ``LocalEndpoint(trace=True)``) carry operator aggregates; others
        are skipped.  ``wall_ms`` is real self-time measured by the
        probe, not simulated latency.
        """
        rows: Dict[str, List[int]] = {}
        wall: Dict[str, float] = {}
        invocations: Dict[str, int] = {}
        queries: Dict[str, int] = {}
        for entry in self.entries(since_mark):
            if not entry.operators:
                continue
            for summary in entry.operators:
                name = summary.operator
                rows.setdefault(name, []).append(summary.rows)
                wall[name] = wall.get(name, 0.0) + summary.wall_ms
                invocations[name] = (
                    invocations.get(name, 0) + summary.invocations
                )
                queries[name] = queries.get(name, 0) + 1
        return {
            name: OperatorBreakdown(
                operator=name,
                rows=sum(rows[name]),
                wall_ms=wall[name],
                invocations=invocations[name],
                queries=queries[name],
            )
            for name in rows
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, since_mark: bool = False) -> str:
        """A plain-text dashboard of the log."""
        summaries = sorted(
            self.by_source(since_mark).values(), key=lambda s: -s.total_ms
        )
        lines = [
            "Query monitor",
            "=============",
            f"{'source':<12} {'queries':>8} {'total ms':>12} "
            f"{'mean ms':>10} {'max ms':>12}",
        ]
        for summary in summaries:
            lines.append(
                f"{summary.source:<12} {summary.queries:>8} "
                f"{summary.total_ms:>12.1f} {summary.mean_ms:>10.1f} "
                f"{summary.max_ms:>12.1f}"
            )
        heavy = self.heavy_queries(since_mark)
        lines.append(
            f"heavy queries (>{self.heavy_threshold_ms:.0f} ms): {len(heavy)}"
        )
        for entry in heavy[:3]:
            first_line = entry.query_text.strip().splitlines()[0]
            lines.append(f"  {entry.elapsed_ms:>12.1f} ms  {first_line[:60]}")
        operators = sorted(
            self.by_operator(since_mark).values(), key=lambda b: -b.wall_ms
        )
        if operators:
            lines.append("")
            lines.append(
                f"{'operator':<16} {'rows':>10} {'wall ms':>10} {'calls':>8}"
            )
            for breakdown in operators:
                lines.append(
                    f"{breakdown.operator:<16} {breakdown.rows:>10} "
                    f"{breakdown.wall_ms:>10.2f} {breakdown.invocations:>8}"
                )
        return "\n".join(lines)
