"""Query-log monitoring.

The demo's second exploration kind presents "explorations that entail
heavy queries ... with the discussed solutions turned on and off"
(Section 5); this monitor summarises an endpoint's query log so that
effect is visible: how many queries each component answered, their
simulated latencies, and which queries crossed the heaviness threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..endpoint.base import Endpoint, QueryLogEntry
from ..perf.hvs import DEFAULT_HEAVY_THRESHOLD_MS

__all__ = ["SourceSummary", "QueryMonitor"]


@dataclass(frozen=True)
class SourceSummary:
    """Aggregate statistics for one answer source."""

    source: str
    queries: int
    total_ms: float
    min_ms: float
    max_ms: float

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.queries if self.queries else 0.0


class QueryMonitor:
    """Summarises an endpoint's query log."""

    def __init__(
        self,
        endpoint: Endpoint,
        heavy_threshold_ms: float = DEFAULT_HEAVY_THRESHOLD_MS,
    ):
        self.endpoint = endpoint
        self.heavy_threshold_ms = heavy_threshold_ms
        self._mark = 0

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------

    def entries(self, since_mark: bool = False) -> List[QueryLogEntry]:
        """The log entries (optionally only those after the last mark)."""
        log = self.endpoint.query_log
        return log[self._mark :] if since_mark else list(log)

    def mark(self) -> int:
        """Remember the current log position; ``entries(since_mark=True)``
        then reports only newer activity."""
        self._mark = len(self.endpoint.query_log)
        return self._mark

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def by_source(self, since_mark: bool = False) -> Dict[str, SourceSummary]:
        """Per-source query counts and latency aggregates."""
        buckets: Dict[str, List[QueryLogEntry]] = {}
        for entry in self.entries(since_mark):
            buckets.setdefault(entry.source, []).append(entry)
        return {
            source: SourceSummary(
                source=source,
                queries=len(group),
                total_ms=sum(e.elapsed_ms for e in group),
                min_ms=min(e.elapsed_ms for e in group),
                max_ms=max(e.elapsed_ms for e in group),
            )
            for source, group in buckets.items()
        }

    def heavy_queries(self, since_mark: bool = False) -> List[QueryLogEntry]:
        """Entries that crossed the heaviness threshold, slowest first."""
        heavy = [
            entry
            for entry in self.entries(since_mark)
            if entry.elapsed_ms > self.heavy_threshold_ms
        ]
        heavy.sort(key=lambda entry: -entry.elapsed_ms)
        return heavy

    def slowest(self, count: int = 5, since_mark: bool = False) -> List[QueryLogEntry]:
        """The ``count`` slowest queries."""
        ordered = sorted(
            self.entries(since_mark), key=lambda entry: -entry.elapsed_ms
        )
        return ordered[:count]

    def total_simulated_ms(self, since_mark: bool = False) -> float:
        return sum(entry.elapsed_ms for entry in self.entries(since_mark))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, since_mark: bool = False) -> str:
        """A plain-text dashboard of the log."""
        summaries = sorted(
            self.by_source(since_mark).values(), key=lambda s: -s.total_ms
        )
        lines = [
            "Query monitor",
            "=============",
            f"{'source':<12} {'queries':>8} {'total ms':>12} "
            f"{'mean ms':>10} {'max ms':>12}",
        ]
        for summary in summaries:
            lines.append(
                f"{summary.source:<12} {summary.queries:>8} "
                f"{summary.total_ms:>12.1f} {summary.mean_ms:>10.1f} "
                f"{summary.max_ms:>12.1f}"
            )
        heavy = self.heavy_queries(since_mark)
        lines.append(
            f"heavy queries (>{self.heavy_threshold_ms:.0f} ms): {len(heavy)}"
        )
        for entry in heavy[:3]:
            first_line = entry.query_text.strip().splitlines()[0]
            lines.append(f"  {entry.elapsed_ms:>12.1f} ms  {first_line[:60]}")
        return "\n".join(lines)
