"""Breadcrumb trails.

"The colored breadcrumb trails indicate the exploration path" (Fig. 2
caption).  Each pane carries the trail of (label, action) pairs that led
to it; trails are assigned cycling colours so parallel exploration paths
stay visually distinct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..rdf.terms import URI

__all__ = ["Crumb", "BreadcrumbTrail", "TRAIL_COLOURS"]

TRAIL_COLOURS = (
    "blue",
    "orange",
    "green",
    "red",
    "purple",
    "teal",
)


@dataclass(frozen=True)
class Crumb:
    """One step of a trail: the element clicked and the action taken."""

    label: URI
    action: str  # e.g. "subclass", "property-outgoing", "connections", "filter"

    def __str__(self) -> str:
        return f"{self.label.local_name}[{self.action}]"


@dataclass
class BreadcrumbTrail:
    """A colour-coded exploration path."""

    colour: str = TRAIL_COLOURS[0]
    crumbs: List[Crumb] = field(default_factory=list)

    def extended(self, label: URI, action: str) -> "BreadcrumbTrail":
        """A new trail with one more crumb (trails are append-only;
        panes share prefixes)."""
        return BreadcrumbTrail(
            colour=self.colour,
            crumbs=self.crumbs + [Crumb(label=label, action=action)],
        )

    def recoloured(self, colour: str) -> "BreadcrumbTrail":
        return BreadcrumbTrail(colour=colour, crumbs=list(self.crumbs))

    @property
    def depth(self) -> int:
        return len(self.crumbs)

    def labels(self) -> List[URI]:
        return [crumb.label for crumb in self.crumbs]

    def path(self) -> List[Tuple[URI, str]]:
        return [(crumb.label, crumb.action) for crumb in self.crumbs]

    def render(self) -> str:
        """E.g. ``Thing -> Agent -> Person -> Philosopher`` (Fig. 2)."""
        if not self.crumbs:
            return "(root)"
        return " -> ".join(crumb.label.local_name for crumb in self.crumbs)

    def __str__(self) -> str:
        return f"[{self.colour}] {self.render()}"
