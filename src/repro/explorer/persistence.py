"""Saving and replaying exploration sessions.

An exploration is fully determined by the sequence of UI actions that
produced it (Section 2's ``(lambda_i, eta_i)`` pairs, materialised as
pane-opening actions).  This module serialises that action log to JSON
and replays it against any endpoint, so a demo walkthrough — or a bug
report — can be reproduced exactly.

Data filters are recorded *extensionally* (the resulting ``S_f`` member
list), since arbitrary Python predicates do not serialise.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..core.model import Direction
from ..endpoint.base import Endpoint
from ..rdf.terms import URI
from .session import ExplorerSession
from .settings import SettingsForm

__all__ = ["save_session", "load_actions", "replay_session", "SessionReplayError"]

_FORMAT_VERSION = 1


class SessionReplayError(ValueError):
    """Raised when a saved session cannot be replayed."""


def _action_to_dict(action: Dict) -> Dict:
    out: Dict = {"kind": action["kind"]}
    for key, value in action.items():
        if key == "kind":
            continue
        if isinstance(value, URI):
            out[key] = value.value
        elif isinstance(value, Direction):
            out[key] = value.value
        elif isinstance(value, (list, tuple)):
            out[key] = [
                item.value if isinstance(item, URI) else item for item in value
            ]
        else:
            out[key] = value
    return out


def save_session(session: ExplorerSession) -> str:
    """Serialise the session's action log (and settings) to JSON."""
    blob = {
        "version": _FORMAT_VERSION,
        "settings": {
            "endpoint_url": session.settings.endpoint_url,
            "mode": session.settings.mode,
            "root_class": session.settings.root_class.value,
            "coverage_threshold": session.settings.coverage_threshold,
        },
        "actions": [_action_to_dict(action) for action in session.action_log],
    }
    return json.dumps(blob, indent=2)


def load_actions(text: str) -> List[Dict]:
    """Parse a saved session; returns the raw action dictionaries."""
    blob = json.loads(text)
    if blob.get("version") != _FORMAT_VERSION:
        raise SessionReplayError(
            f"unsupported session format version: {blob.get('version')!r}"
        )
    actions = blob.get("actions")
    if not isinstance(actions, list):
        raise SessionReplayError("malformed session: no action list")
    return actions


def replay_session(
    endpoint: Endpoint,
    text: str,
    settings: Optional[SettingsForm] = None,
) -> ExplorerSession:
    """Rebuild a session by replaying its saved actions on ``endpoint``."""
    blob = json.loads(text)
    saved_settings = blob.get("settings", {})
    if settings is None:
        settings = SettingsForm(
            endpoint_url=saved_settings.get(
                "endpoint_url", SettingsForm().endpoint_url
            ),
            root_class=URI(
                saved_settings.get(
                    "root_class", SettingsForm().root_class.value
                )
            ),
            coverage_threshold=saved_settings.get("coverage_threshold", 0.2),
        )
    session = ExplorerSession(endpoint, settings=settings)
    for action in load_actions(text):
        _apply(session, action)
    return session


def _apply(session: ExplorerSession, action: Dict) -> None:
    kind = action.get("kind")
    try:
        if kind == "subclass":
            pane = session.panes[action["pane"]]
            session.open_subclass_pane(pane, URI(action["class"]))
        elif kind == "search":
            session.open_class_pane(URI(action["class"]))
        elif kind == "connections":
            pane = session.panes[action["pane"]]
            session.open_connections_pane(
                pane,
                URI(action["property"]),
                URI(action["type"]),
                Direction(action.get("direction", "outgoing")),
            )
        elif kind == "filtered":
            pane = session.panes[action["pane"]]
            members = frozenset(URI(value) for value in action["members"])
            session.open_members_pane(
                pane, members, label=URI(action["class"])
            )
        elif kind == "close":
            session.close_pane(session.panes[action["pane"]])
        else:
            raise SessionReplayError(f"unknown action kind: {kind!r}")
    except (KeyError, IndexError) as exc:
        raise SessionReplayError(
            f"cannot replay action {action!r}: {exc}"
        ) from exc
