"""The explorer session: the single-page application state.

Gathers the pieces of Section 3: the settings form connects to an
endpoint; the first queries fetch dataset statistics; an initial pane
opens on the root class; further panes open "one beneath the other" by
clicking subclass bars, picking autocomplete results, following
Connections-tab bars (which *narrow* the working set), or applying the
filter expansion to a data table.
"""

from __future__ import annotations

from itertools import cycle
from typing import List, Optional

from ..core.engine import ChartEngine
from ..core.model import Bar, BarType, Direction
from ..core.search import ClassSearchEntry, ClassSearchIndex
from ..core.statistics import DatasetStatistics, StatisticsService
from ..endpoint.base import Endpoint
from ..rdf.terms import URI
from .breadcrumbs import TRAIL_COLOURS, BreadcrumbTrail
from .pane import Pane
from .settings import SettingsForm

__all__ = ["ExplorerSession"]


class ExplorerSession:
    """A running eLinda session against one endpoint."""

    def __init__(
        self,
        endpoint: Endpoint,
        settings: Optional[SettingsForm] = None,
    ):
        self.settings = settings or SettingsForm()
        self.endpoint = endpoint
        self.engine = ChartEngine(
            endpoint,
            self.settings.root_class,
            page_size=self.settings.chart_page_size,
            quantum_ms=self.settings.chart_quantum_ms,
        )
        self.statistics_service = StatisticsService(endpoint)
        # "The very first queries present the user with general
        # statistics about the dataset" (Section 3.1).
        self.dataset_statistics: DatasetStatistics = (
            self.statistics_service.dataset_statistics()
        )
        self.panes: List[Pane] = []
        #: Recorded UI actions (drives save/replay, repro.explorer.persistence).
        self.action_log: List[dict] = []
        self._search_index: Optional[ClassSearchIndex] = None
        self._colours = cycle(TRAIL_COLOURS)
        self.open_initial_pane()

    # ------------------------------------------------------------------
    # Pane management
    # ------------------------------------------------------------------

    @property
    def current_pane(self) -> Pane:
        return self.panes[-1]

    def _open(self, bar: Bar, trail: BreadcrumbTrail) -> Pane:
        pane = Pane(
            engine=self.engine,
            statistics=self.statistics_service,
            bar=bar,
            trail=trail,
            coverage_threshold=self.settings.coverage_threshold,
        )
        self.panes.append(pane)
        return pane

    def open_initial_pane(self) -> Pane:
        """The initial pane on the root class (Fig. 1)."""
        root = self.engine.root_bar()
        trail = BreadcrumbTrail(colour=next(self._colours)).extended(
            root.label, "root"
        )
        return self._open(root, trail)

    def open_subclass_pane(self, pane: Pane, subclass: URI) -> Pane:
        """Clicking a subclass bar opens a pane below (Section 3.2)."""
        bar = pane.subclass_chart().get(subclass)
        if bar is None:
            raise KeyError(f"no subclass bar {subclass.local_name!r}")
        self.action_log.append(
            {"kind": "subclass", "pane": self.panes.index(pane), "class": subclass}
        )
        return self._open(bar, pane.trail.extended(subclass, "subclass"))

    def open_search_pane(self, cls: URI) -> Pane:
        """Opening a pane from the autocomplete search box: S is *all*
        instances of the class — no drill-down needed (Section 3.2)."""
        if cls not in self.search_index():
            raise KeyError(f"unknown class: {cls}")
        return self.open_class_pane(cls)

    def open_class_pane(self, cls: URI) -> Pane:
        """A pane over all instances of ``cls``, without requiring the
        class to be declared (datasets with undeclared classes are still
        explorable 'in a limited fashion', Section 3.1)."""
        from ..core.queries import MemberPattern

        pattern = MemberPattern.of_type(cls)
        count = self.statistics_service.instance_count(cls)
        bar = Bar(label=cls, type=BarType.CLASS, count=count, pattern=pattern)
        trail = BreadcrumbTrail(colour=next(self._colours)).extended(
            cls, "search"
        )
        self.action_log.append({"kind": "search", "class": cls})
        return self._open(bar, trail)

    def open_connections_pane(
        self,
        pane: Pane,
        prop: URI,
        object_type: URI,
        direction: Direction = Direction.OUTGOING,
    ) -> Pane:
        """Clicking a Connections-tab bar opens a pane on ``O_sp`` —
        the narrowed object set, not all instances of the type
        (Section 3.4)."""
        chart = pane.connections_chart(prop, direction)
        bar = chart.get(object_type)
        if bar is None:
            raise KeyError(
                f"no connections bar of type {object_type.local_name!r}"
            )
        trail = pane.trail.extended(prop, "connections").extended(
            object_type, "object"
        )
        self.action_log.append(
            {
                "kind": "connections",
                "pane": self.panes.index(pane),
                "property": prop,
                "type": object_type,
                "direction": direction,
            }
        )
        return self._open(bar, trail)

    def open_filtered_pane(self, pane: Pane) -> Pane:
        """The filter expansion: a pane on ``S_f`` (Section 3.3)."""
        bar = pane.filtered_bar()
        assert bar.uris is not None
        self.action_log.append(
            {
                "kind": "filtered",
                "pane": self.panes.index(pane),
                "class": bar.label,
                "members": sorted(bar.uris, key=lambda uri: uri.value),
            }
        )
        return self._open(bar, pane.trail.extended(bar.label, "filter"))

    def open_members_pane(
        self, pane: Pane, members: frozenset, label: URI
    ) -> Pane:
        """A pane over an explicit member set (filter-expansion replays
        and programmatic narrowing)."""
        from ..core.queries import MemberPattern

        bar = Bar(
            label=label,
            type=BarType.CLASS,
            uris=frozenset(members),
            pattern=MemberPattern.of_values(
                sorted(members, key=lambda uri: uri.value)
            ),
        )
        self.action_log.append(
            {
                "kind": "filtered",
                "pane": self.panes.index(pane),
                "class": label,
                "members": sorted(members, key=lambda uri: uri.value),
            }
        )
        return self._open(bar, pane.trail.extended(label, "filter"))

    def close_pane(self, pane: Pane) -> None:
        """Remove a pane from the stack."""
        index = self.panes.index(pane)
        self.panes.remove(pane)
        self.action_log.append({"kind": "close", "pane": index})

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search_index(self) -> ClassSearchIndex:
        if self._search_index is None:
            self._search_index = ClassSearchIndex.build(self.endpoint)
        return self._search_index

    def autocomplete(self, prefix: str, limit: int = 10) -> List[ClassSearchEntry]:
        """Autocomplete class names (Section 3.2)."""
        return self.search_index().complete(prefix, limit=limit)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, top: int = 8) -> str:
        """All panes, one beneath the other."""
        stats = self.dataset_statistics
        header = (
            f"eLinda @ {self.settings.endpoint_url}\n"
            f"dataset: {stats.total_triples:,} triples, "
            f"{stats.class_count:,} classes\n"
        )
        blocks = [header]
        for index, pane in enumerate(self.panes, start=1):
            blocks.append(f"--- pane {index} " + "-" * 40)
            blocks.append(pane.render(top=top))
        return "\n".join(blocks)
