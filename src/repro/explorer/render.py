"""Plain-text rendering of charts and panes.

The real eLinda draws HTML bar charts in a browser; this headless
reproduction renders the same information as ASCII, which the examples
print and the tests assert on.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.model import Bar, BarChart, BarType
from ..rdf.namespace import NamespaceManager
from ..rdf.terms import URI
from ..rdf.vocab import default_namespace_manager

__all__ = ["render_chart", "render_bar_line", "hover_box"]

_BAR_CHARS = "#"


def _label_text(label: URI, manager: NamespaceManager) -> str:
    return manager.qname(label) or label.local_name or label.value


def render_bar_line(
    bar: Bar,
    max_size: int,
    width: int = 40,
    label_width: int = 28,
    manager: Optional[NamespaceManager] = None,
) -> str:
    """One chart row: label, bar, and count (plus coverage when known)."""
    manager = manager or default_namespace_manager()
    label = _label_text(bar.label, manager)[:label_width].ljust(label_width)
    filled = round(width * bar.size / max_size) if max_size else 0
    if bar.size > 0 and filled == 0:
        filled = 1
    bar_text = (_BAR_CHARS * filled).ljust(width)
    suffix = f"{bar.size:>8,}"
    if bar.coverage is not None:
        suffix += f"  ({bar.coverage:6.1%})"
    return f"{label} |{bar_text}| {suffix}"


def render_chart(
    chart: BarChart,
    title: str = "",
    top: Optional[int] = 15,
    width: int = 40,
    manager: Optional[NamespaceManager] = None,
) -> str:
    """Render the chart's tallest bars as an ASCII histogram."""
    manager = manager or default_namespace_manager()
    bars = chart.sorted_bars()
    shown = bars if top is None else bars[:top]
    max_size = bars[0].size if bars else 0
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for bar in shown:
        lines.append(
            render_bar_line(bar, max_size, width=width, manager=manager)
        )
    hidden = len(bars) - len(shown)
    if hidden > 0:
        lines.append(f"... ({hidden} more bars)")
    if not bars:
        lines.append("(empty chart)")
    return "\n".join(lines)


def hover_box(
    bar: Bar,
    direct_subclasses: Optional[int] = None,
    total_subclasses: Optional[int] = None,
) -> str:
    """The pop-up box shown when hovering a bar (Fig. 1 shows Agent with
    >2M instances, 5 direct subclasses, 277 in total)."""
    lines = [bar.label.local_name, f"instances: {bar.size:,}"]
    if bar.type is BarType.PROPERTY and bar.coverage is not None:
        lines.append(f"coverage: {bar.coverage:.1%}")
    if direct_subclasses is not None:
        lines.append(f"direct subclasses: {direct_subclasses}")
    if total_subclasses is not None:
        lines.append(f"subclasses in total: {total_subclasses}")
    return "\n".join(lines)
