"""Chart widgets: visible-range control and the coverage threshold.

"To facilitate the visualization of a large number of bars, only a
subset of the bars is initially shown.  A widget located at the top of
the chart allows to control [the] visible part of the chart"
(Section 3.2).  "We enable the user to restrict to significant
properties by filtering out properties with a coverage lower than a
threshold ... The user may adjust the threshold and reveal more
properties if needed" (Section 3.3, default 20 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core.model import Bar, BarChart

__all__ = [
    "VisibleRangeWidget",
    "CoverageThresholdWidget",
    "DEFAULT_COVERAGE_THRESHOLD",
    "DEFAULT_VISIBLE_BARS",
]

DEFAULT_COVERAGE_THRESHOLD = 0.20
DEFAULT_VISIBLE_BARS = 15


@dataclass
class VisibleRangeWidget:
    """A sliding window over a chart's sorted bars."""

    window_size: int = DEFAULT_VISIBLE_BARS
    offset: int = 0

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError("window size must be positive")
        if self.offset < 0:
            raise ValueError("offset cannot be negative")

    def visible(self, chart: BarChart) -> List[Bar]:
        """The currently visible bars (tallest-first ordering)."""
        bars = chart.sorted_bars()
        return bars[self.offset : self.offset + self.window_size]

    def scroll_right(self, chart: BarChart, step: int = 0) -> int:
        """Scroll towards shorter bars; returns the new offset."""
        step = step or self.window_size
        max_offset = max(0, len(chart) - self.window_size)
        self.offset = min(self.offset + step, max_offset)
        return self.offset

    def scroll_left(self, step: int = 0) -> int:
        """Scroll towards taller bars; returns the new offset."""
        step = step or self.window_size
        self.offset = max(0, self.offset - step)
        return self.offset

    def reset(self) -> None:
        self.offset = 0

    def can_scroll_right(self, chart: BarChart) -> bool:
        return self.offset + self.window_size < len(chart)

    def can_scroll_left(self) -> bool:
        return self.offset > 0


@dataclass
class CoverageThresholdWidget:
    """The significance threshold slider of the property chart."""

    threshold: float = DEFAULT_COVERAGE_THRESHOLD
    history: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._validate(self.threshold)

    @staticmethod
    def _validate(value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"threshold must be in [0, 1]: {value}")

    def set_threshold(self, value: float) -> None:
        """Adjust the threshold (records the previous value)."""
        self._validate(value)
        self.history.append(self.threshold)
        self.threshold = value

    def reveal_more(self, step: float = 0.05) -> float:
        """Lower the threshold to reveal more properties."""
        self.set_threshold(max(0.0, self.threshold - step))
        return self.threshold

    def apply(self, chart: BarChart) -> BarChart:
        """Bars whose coverage meets the threshold."""
        return chart.above_coverage(self.threshold)

    def hidden_count(self, chart: BarChart) -> int:
        """How many bars the threshold currently hides."""
        return len(chart) - len(self.apply(chart))
