"""Exploration panes (Section 3.2-3.4).

"Exploration with eLinda is effectively performed by constructing a
sequence of tabbed panes. ... Each pane visualizes data related to a set
of subjects (instances) S from several different perspectives.  All
subjects in S are of the same type T."  The three perspectives are the
subclass chart (default tab), the property charts with the coverage
threshold and the data table (*Property Data* tab), and the object
charts (*Connections* tab).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from ..core.datatable import DataTable
from ..core.engine import ChartEngine
from ..core.model import Bar, BarChart, BarType, Direction
from ..core.queries import MemberPattern
from ..core.statistics import ClassStatistics, StatisticsService
from ..rdf.terms import URI
from .breadcrumbs import BreadcrumbTrail
from .render import hover_box, render_chart
from .widgets import (
    CoverageThresholdWidget,
    VisibleRangeWidget,
)

__all__ = ["Tab", "Pane"]


class Tab(enum.Enum):
    """The three tabs of a pane."""

    SUBCLASSES = "subclasses"
    PROPERTY_DATA = "property data"
    CONNECTIONS = "connections"


class Pane:
    """One pane: a typed instance set S explored from three perspectives.

    Charts are computed lazily per tab and cached; the subclass chart is
    computed on construction because "by default, a pane is opened with
    a bar chart showing the distribution of instances in S among the
    subclasses of T".
    """

    def __init__(
        self,
        engine: ChartEngine,
        statistics: StatisticsService,
        bar: Bar,
        trail: Optional[BreadcrumbTrail] = None,
        coverage_threshold: Optional[float] = None,
    ):
        if bar.type is not BarType.CLASS:
            raise ValueError("a pane is opened on a class bar")
        self.engine = engine
        self.statistics_service = statistics
        self.bar = bar
        self.trail = trail or BreadcrumbTrail()
        self.active_tab = Tab.SUBCLASSES
        self.threshold_widget = CoverageThresholdWidget(
            threshold=coverage_threshold
            if coverage_threshold is not None
            else CoverageThresholdWidget().threshold
        )
        self.visible_widget = VisibleRangeWidget()
        self._subclass_chart: Optional[BarChart] = None
        self._property_charts: Dict[Direction, BarChart] = {}
        self._connection_charts: Dict[Tuple[URI, Direction], BarChart] = {}
        self._table: Optional[DataTable] = None
        # Default tab opens immediately.
        self.subclass_chart()

    # ------------------------------------------------------------------
    # Pane identity and statistics
    # ------------------------------------------------------------------

    @property
    def pane_type(self) -> URI:
        """The type T shared by all members of S."""
        return self.bar.label

    @property
    def instance_count(self) -> int:
        """``|S|`` (upper-left corner statistic)."""
        return self.bar.size

    def corner_statistics(self) -> ClassStatistics:
        """|S| plus T's direct/indirect subclass counts (Section 3.2)."""
        direct = self.statistics_service.direct_subclasses(self.pane_type)
        total = self.statistics_service.all_subclasses(self.pane_type)
        return ClassStatistics(
            cls=self.pane_type,
            instance_count=self.instance_count,
            direct_subclasses=len(direct),
            total_subclasses=len(total),
        )

    # ------------------------------------------------------------------
    # Tabs
    # ------------------------------------------------------------------

    def switch_tab(self, tab: Tab) -> None:
        self.active_tab = tab

    def subclass_chart(self) -> BarChart:
        """The default subclass-distribution chart."""
        if self._subclass_chart is None:
            self._subclass_chart = self.engine.subclass_chart(self.bar)
        return self._subclass_chart

    def property_chart(
        self, direction: Direction = Direction.OUTGOING
    ) -> BarChart:
        """The full (unthresholded) property chart for one direction."""
        chart = self._property_charts.get(direction)
        if chart is None:
            chart = self.engine.property_chart(self.bar, direction)
            self._property_charts[direction] = chart
        return chart

    def significant_properties(
        self, direction: Direction = Direction.OUTGOING
    ) -> BarChart:
        """The property chart with the coverage threshold applied."""
        return self.threshold_widget.apply(self.property_chart(direction))

    def property_chart_progressive(
        self,
        direction: Direction = Direction.OUTGOING,
        window_size: int = 2000,
        max_steps=None,
    ):
        """Progressive property chart via incremental evaluation: yields
        growing charts as windows arrive ("effective latency for user
        interaction", Section 4).  The final chart is cached as the
        pane's property chart for that direction."""
        last: BarChart = BarChart()
        for chart, partial in self.engine.property_chart_incremental(
            self.bar, direction, window_size=window_size, max_steps=max_steps
        ):
            last = chart
            yield chart, partial
            if partial.complete:
                self._property_charts[direction] = last

    def connections_chart(
        self, prop: URI, direction: Direction = Direction.OUTGOING
    ) -> BarChart:
        """The Connections-tab object chart for a selected property."""
        key = (prop, direction)
        chart = self._connection_charts.get(key)
        if chart is None:
            property_bar = self.property_chart(direction).get(prop)
            if property_bar is None:
                raise KeyError(
                    f"{prop.local_name!r} is not a property of this pane"
                )
            chart = self.engine.object_chart(property_bar, direction)
            self._connection_charts[key] = chart
        return chart

    # ------------------------------------------------------------------
    # Data table
    # ------------------------------------------------------------------

    def table(self) -> DataTable:
        """The pane's data table (lazily created, columns start empty)."""
        if self._table is None:
            pattern = self.bar.pattern
            if not isinstance(pattern, MemberPattern):
                if self.bar.uris is None:
                    raise ValueError("pane bar has no pattern and no members")
                pattern = MemberPattern.of_values(
                    sorted(self.bar.uris, key=lambda uri: uri.value)
                )
            self._table = DataTable(self.engine.endpoint, pattern)
        return self._table

    def select_property_column(self, prop: URI) -> DataTable:
        """Clicking a property bar adds it as a table column (Section 3.3)."""
        if prop not in self.property_chart(Direction.OUTGOING):
            raise KeyError(f"{prop.local_name!r} is not a property of this pane")
        table = self.table()
        table.add_column(prop)
        return table

    def filtered_bar(self) -> Bar:
        """The bar over ``S_f`` after the table's data filters — opening
        a pane on it is the filter expansion.  The pane's own S is left
        unchanged (Section 3.3)."""
        members = self.table().filtered_members()
        return Bar(
            label=self.pane_type,
            type=BarType.CLASS,
            uris=members,
            pattern=MemberPattern.of_values(
                sorted(members, key=lambda uri: uri.value)
            ),
        )

    # ------------------------------------------------------------------
    # Interaction helpers
    # ------------------------------------------------------------------

    def hover(self, label: URI) -> str:
        """The hover pop-up for a bar of the subclass chart (Fig. 1)."""
        bar = self.subclass_chart().get(label)
        if bar is None:
            raise KeyError(f"no bar labelled {label.local_name!r}")
        direct = self.statistics_service.direct_subclasses(label)
        total = self.statistics_service.all_subclasses(label)
        return hover_box(
            bar, direct_subclasses=len(direct), total_subclasses=len(total)
        )

    def sparql_for(self, label: URI, tab: Optional[Tab] = None) -> str:
        """The generated SPARQL behind one bar of the active (or given)
        tab's chart."""
        tab = tab or self.active_tab
        if tab is Tab.SUBCLASSES:
            chart = self.subclass_chart()
        elif tab is Tab.PROPERTY_DATA:
            chart = self.property_chart(Direction.OUTGOING)
        else:
            raise ValueError(
                "connections SPARQL is per property; use "
                "engine.sparql_for on a connections-chart bar"
            )
        bar = chart.get(label)
        if bar is None:
            raise KeyError(f"no bar labelled {label.local_name!r}")
        return self.engine.sparql_for(bar)

    def render(self, top: int = 12) -> str:
        """ASCII rendering of the pane's active tab."""
        stats = self.corner_statistics()
        header = (
            f"Pane: {self.pane_type.local_name}  |S|={stats.instance_count:,}  "
            f"subclasses: {stats.direct_subclasses} direct / "
            f"{stats.total_subclasses} total\n"
            f"trail: {self.trail.render()}\n"
        )
        if self.active_tab is Tab.SUBCLASSES:
            body = render_chart(self.subclass_chart(), top=top)
        elif self.active_tab is Tab.PROPERTY_DATA:
            body = render_chart(
                self.significant_properties(Direction.OUTGOING), top=top
            )
        else:
            body = "(select a property to view connections)"
        return header + body
