"""The eLinda decomposer (Section 4).

"eLinda detects heavy queries ... and map[s] the SPARQL queries to a
decomposition of SQL queries that utilizes the indexes and prevents
heavy and redundant SPARQL computations.  Unlike the eLinda HVS, the
eLinda decomposer can be used for *all* property expansion queries."

The detector recognises the nested-aggregation property-expansion shape
(the exact query :func:`repro.core.queries.property_chart_query`
generates, which is the paper's Section 4 example query) and answers it
from :class:`repro.perf.indexes.SpecializedIndexes` instead of running
the join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.model import Direction
from ..endpoint.base import EndpointResponse, observe_response
from ..endpoint.clock import SimClock
from ..endpoint.cost import DECOMPOSER_PROFILE, CostModel
from ..obs.metrics import REGISTRY
from ..rdf.terms import Literal, URI
from ..rdf.vocab import RDF, XSD
from ..sparql.ast import (
    AggregateExpr,
    GroupGraphPattern,
    SelectQuery,
    SubSelectPattern,
    TriplePatternNode,
    Var,
    VarExpr,
)
from ..sparql.errors import SparqlError
from ..sparql.parser import parse_query
from ..sparql.results import SelectResult
from .indexes import SpecializedIndexes

__all__ = ["PropertyExpansionSpec", "match_property_expansion", "Decomposer"]

_DECOMPOSER_REQUESTS_TOTAL = REGISTRY.counter(
    "repro_decomposer_requests_total",
    "Queries offered to the decomposer, by whether the rewrite applied",
    labelnames=("outcome",),
)
_DECOMPOSER_REWRITTEN = _DECOMPOSER_REQUESTS_TOTAL.labels(outcome="rewritten")
_DECOMPOSER_SKIPPED = _DECOMPOSER_REQUESTS_TOTAL.labels(outcome="skipped")

_RDF_TYPE = RDF.term("type")
_XSD_INTEGER = XSD.term("integer").value


@dataclass(frozen=True)
class PropertyExpansionSpec:
    """A recognised property-expansion query."""

    classes: tuple
    direction: Direction
    #: projection variable names for (property, subject count, triple sum)
    var_names: tuple


def _is_var(term, name: Optional[str] = None) -> bool:
    return isinstance(term, Var) and (name is None or term.name == name)


def _aggregate_projection(query: SelectQuery, agg_name: str) -> Optional[str]:
    """The AS-variable of the (single) aggregate projection ``agg_name``."""
    assert query.projections is not None
    for projection in query.projections:
        expression = projection.expression
        if isinstance(expression, AggregateExpr) and expression.name == agg_name:
            return projection.var.name
    return None


def match_property_expansion(
    query_text: str, query=None
) -> Optional[PropertyExpansionSpec]:
    """Detect the property-expansion query shape; None when not matched.

    ``query`` may carry an already-parsed AST (e.g. out of the plan
    cache) to skip re-parsing the text.

    Matched shape (member variable ``?s``, any variable names accepted):

    .. code-block:: sparql

        SELECT ?p (COUNT(?p) AS ?c) (SUM(?sp) AS ?t) WHERE {
          { SELECT ?s ?p (COUNT(*) AS ?sp) WHERE {
              ?s rdf:type <C1> .  ...  ?s rdf:type <Ck> .
              ?s ?p ?o .          # or  ?o ?p ?s .  for incoming
            } GROUP BY ?s ?p }
        } GROUP BY ?p

    The member pattern must consist solely of ``rdf:type`` constraints —
    that is, the bar sits on a (materialised) subclass chain, which is
    the paper's "subclasses of owl:Thing" condition.
    """
    if query is None:
        try:
            query = parse_query(query_text)
        except SparqlError:
            return None
    if not isinstance(query, SelectQuery) or query.projections is None:
        return None
    # Outer: GROUP BY one variable, projections = that var + COUNT + SUM.
    if len(query.group_by) != 1 or not isinstance(query.group_by[0], VarExpr):
        return None
    prop_var = query.group_by[0].var.name
    if len(query.projections) != 3:
        return None
    if (
        query.projections[0].expression is not None
        or query.projections[0].var.name != prop_var
    ):
        return None
    count_var = _aggregate_projection(query, "COUNT")
    sum_var = _aggregate_projection(query, "SUM")
    if count_var is None or sum_var is None:
        return None
    if query.having or query.distinct or query.limit is not None or query.offset:
        return None
    # Body: exactly one sub-select.
    children = query.where.children
    if len(children) != 1 or not isinstance(children[0], SubSelectPattern):
        return None
    inner = children[0].query
    if inner.projections is None or len(inner.group_by) != 2:
        return None
    if not all(isinstance(key, VarExpr) for key in inner.group_by):
        return None
    inner_keys = {key.var.name for key in inner.group_by}  # type: ignore[union-attr]
    if prop_var not in inner_keys:
        return None
    member_var = (inner_keys - {prop_var}).pop()
    # Inner projections: ?s ?p (COUNT(*) AS ?sp).
    inner_count = None
    for projection in inner.projections:
        expression = projection.expression
        if isinstance(expression, AggregateExpr):
            if expression.name != "COUNT" or expression.argument is not None:
                return None
            inner_count = projection.var.name
    if inner_count is None:
        return None
    # Inner body: only triple patterns.
    if not isinstance(inner.where, GroupGraphPattern):
        return None
    type_classes: List[URI] = []
    edge: Optional[TriplePatternNode] = None
    for child in inner.where.children:
        if not isinstance(child, TriplePatternNode):
            return None
        if (
            _is_var(child.subject, member_var)
            and child.predicate == _RDF_TYPE
            and isinstance(child.object, URI)
        ):
            type_classes.append(child.object)
        elif _is_var(child.predicate, prop_var):
            if edge is not None:
                return None
            edge = child
        else:
            return None
    if edge is None or not type_classes:
        return None
    if _is_var(edge.subject, member_var) and _is_var(edge.object):
        direction = Direction.OUTGOING
    elif _is_var(edge.object, member_var) and _is_var(edge.subject):
        direction = Direction.INCOMING
    else:
        return None
    return PropertyExpansionSpec(
        classes=tuple(type_classes),
        direction=direction,
        var_names=(prop_var, count_var, sum_var),
    )


class Decomposer:
    """Answers recognised property expansions from the indexes."""

    def __init__(
        self,
        indexes: SpecializedIndexes,
        clock: Optional[SimClock] = None,
        cost_model: CostModel = DECOMPOSER_PROFILE,
        plan_cache=None,
    ):
        self.indexes = indexes
        self.clock = clock or SimClock()
        self.cost_model = cost_model
        self.plan_cache = plan_cache
        self.hits = 0
        self.misses = 0

    def try_answer(self, query_text: str) -> Optional[EndpointResponse]:
        """Answer the query from the indexes, or None when out of scope."""
        parsed = None
        if self.plan_cache is not None:
            # Shape matching happens per request; the cached AST makes it
            # a pure tree walk instead of a parse + walk.
            try:
                parsed = self.plan_cache.parse(query_text)
            except SparqlError:
                parsed = None
        spec = match_property_expansion(query_text, query=parsed)
        if spec is None:
            self.misses += 1
            _DECOMPOSER_SKIPPED.inc()
            return None
        rows = self.indexes.property_expansion(list(spec.classes), spec.direction)
        if rows is None:
            self.misses += 1
            _DECOMPOSER_SKIPPED.inc()
            return None
        self.hits += 1
        _DECOMPOSER_REWRITTEN.inc()
        prop_var, count_var, sum_var = spec.var_names
        bindings = [
            {
                prop_var: row.prop,
                count_var: Literal(str(row.subject_count), datatype=_XSD_INTEGER),
                sum_var: Literal(str(row.triple_count), datatype=_XSD_INTEGER),
            }
            for row in rows
        ]
        result = SelectResult([prop_var, count_var, sum_var], bindings)
        # Simulated latency: an index probe per member (the SQL-side
        # subject-type scan) plus per-row result assembly.
        probes = min(
            (self.indexes.instance_count(cls) for cls in spec.classes),
            default=0,
        )
        elapsed = self.cost_model.simulate_ms(
            intermediate_bindings=0,
            pattern_scans=probes,
            result_rows=len(bindings),
        )
        self.clock.advance(elapsed)
        response = EndpointResponse(
            result=result,
            elapsed_ms=elapsed,
            source="decomposer",
            query_text=query_text,
            stats=None,
        )
        observe_response(response)
        return response
