"""Incremental evaluation over a remote endpoint (compatibility mode).

Section 4: "we also allow eLinda to work with a remote Virtuoso endpoint
... Naturally, in this mode responsiveness is lower than the above local
mode.  Yet, the aforementioned incremental evaluation is applicable (and
applied) even in the remote mode, allowing for effective latency."

Remotely there is no graph object to window, so windows are carved with
SPARQL itself: the chart query's inner triple scan is wrapped in an
ORDER BY + LIMIT/OFFSET sub-select, and the frontend merges the partial
aggregates exactly as the local incremental evaluator does.  Pagination
by (subject, predicate, object) order keeps windows disjoint and
subject-aligned *per page boundary in the stable total order*, so the
merged chart converges to the one-shot result when all pages are
consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..core.model import Direction
from ..core.queries import MemberPattern
from ..endpoint.base import Endpoint
from ..rdf.terms import Literal, Term
from ..sparql.results import SelectResult
from .incremental import INCREMENTAL_WINDOWS_TOTAL, PartialResult

__all__ = ["RemoteIncrementalConfig", "RemoteIncrementalEvaluator"]

_WINDOWS_REMOTE = INCREMENTAL_WINDOWS_TOTAL.labels(mode="remote")

_XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"


@dataclass(frozen=True)
class RemoteIncrementalConfig:
    """N (triples per page) and k (page cap) for remote windows."""

    window_size: int = 2000
    max_steps: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if self.max_steps is not None and self.max_steps <= 0:
            raise ValueError("max_steps must be positive when given")


def _windowed_property_chart_query(
    pattern: MemberPattern,
    direction: Direction,
    limit: int,
    offset: int,
) -> str:
    """The property-expansion chart computed on one page of the member
    triples (page = ORDER BY ?s ?p ?o + LIMIT/OFFSET)."""
    if direction is Direction.OUTGOING:
        edge = "?s ?p ?o ."
    else:
        edge = "?o ?p ?s ."
    return (
        "SELECT ?p (COUNT(?p) AS ?count) (SUM(?sp) AS ?triples) WHERE {\n"
        "  { SELECT ?s ?p (COUNT(*) AS ?sp) WHERE {\n"
        "      { SELECT ?s ?p ?o WHERE {\n"
        f"{pattern.render(indent='          ')}\n"
        f"          {edge}\n"
        "        } ORDER BY ?s ?p ?o "
        f"LIMIT {limit} OFFSET {offset} }}\n"
        "    } GROUP BY ?s ?p }\n"
        "}\nGROUP BY ?p"
    )


class RemoteIncrementalEvaluator:
    """Pages a property-expansion chart out of a remote endpoint.

    The merge is exact for the COUNT column only when a subject's
    triples do not straddle a page boundary; the final merged ``count``
    may over-count a subject split across two pages by at most the
    number of page boundaries — the same approximation the paper's raw
    triple windows make.  ``triples`` sums are always exact.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        config: Optional[RemoteIncrementalConfig] = None,
    ):
        self.endpoint = endpoint
        self.config = config or RemoteIncrementalConfig()

    def run(
        self,
        pattern: MemberPattern,
        direction: Direction = Direction.OUTGOING,
    ) -> Iterator[PartialResult]:
        """Yield one merged partial chart per remote page."""
        merged: Dict[Term, List[int]] = {}
        cumulative = 0.0
        step = 0
        while True:
            step += 1
            offset = (step - 1) * self.config.window_size
            query = _windowed_property_chart_query(
                pattern, direction, self.config.window_size, offset
            )
            response = self.endpoint.query(query)
            result = response.result
            assert isinstance(result, SelectResult)
            cumulative += response.elapsed_ms
            page_triples = 0
            for row in result.rows:
                prop = row.get("p")
                count = _as_int(row.get("count"))
                triples = _as_int(row.get("triples"))
                page_triples += triples
                if prop is None:
                    continue
                slot = merged.setdefault(prop, [0, 0])
                slot[0] += count
                slot[1] += triples
            complete = page_triples < self.config.window_size
            _WINDOWS_REMOTE.inc()
            yield PartialResult(
                result=self._merged_result(merged),
                step=step,
                windows_consumed=step,
                complete=complete,
                elapsed_ms=response.elapsed_ms,
                cumulative_ms=cumulative,
            )
            if complete:
                return
            if (
                self.config.max_steps is not None
                and step >= self.config.max_steps
            ):
                return

    def run_to_completion(
        self,
        pattern: MemberPattern,
        direction: Direction = Direction.OUTGOING,
    ) -> PartialResult:
        """Consume all pages (up to k); returns the final merge."""
        last: Optional[PartialResult] = None
        for partial in self.run(pattern, direction):
            last = partial
        assert last is not None
        return last

    @staticmethod
    def _merged_result(merged: Dict[Term, List[int]]) -> SelectResult:
        rows = [
            {
                "p": prop,
                "count": Literal(str(counts[0]), datatype=_XSD_INTEGER),
                "triples": Literal(str(counts[1]), datatype=_XSD_INTEGER),
            }
            for prop, counts in merged.items()
        ]
        rows.sort(key=lambda row: (-int(row["count"].lexical), row["p"].sort_key()))
        return SelectResult(["p", "count", "triples"], rows)


def _as_int(term) -> int:
    if isinstance(term, Literal):
        try:
            return int(term.lexical)
        except ValueError:
            return 0
    return 0
