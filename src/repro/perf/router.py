"""The eLinda endpoint: HVS -> decomposer -> backend routing (Fig. 3).

"For each query to the eLinda endpoint, the system first checks if the
HVS encountered it before and determined it to be heavy.  If so, use the
result from the HVS, otherwise route it to the Virtuoso endpoint.
eLinda backend measures the run time of the routed queries" (Section 4).
Between the HVS and the backend sit two aggregate layers: the
incrementally-maintained :class:`~repro.perf.views.MaterializedViews`
(all three chart shapes, fresh across graph edits) and the decomposer —
"the eLinda decomposer can be used for all property expansion queries" —
whose build-once indexes answer while no update has occurred.  The
ladder is HVS → views → decomposer → backend.

The same chain doubles as a *fallback ladder* under backend failure:
when a :class:`~repro.serve.breaker.CircuitBreaker` on the backend is
open, queries the HVS has cached or the decomposer can rewrite are
still answered, and only queries that genuinely need the backend raise
:class:`~repro.serve.breaker.CircuitOpenError` for the serving layer to
back off on.
"""

from __future__ import annotations

from typing import Optional

from ..endpoint.base import Endpoint, EndpointResponse
from ..endpoint.wire import TransientWireError
from ..obs.metrics import REGISTRY
from .decomposer import Decomposer
from .hvs import HeavyQueryStore

__all__ = ["ElindaEndpoint"]

_ROUTER_QUERIES_TOTAL = REGISTRY.counter(
    "repro_router_queries_total",
    "Queries answered by the eLinda endpoint, by which layer answered",
    labelnames=("route",),
)
_ROUTE_HVS = _ROUTER_QUERIES_TOTAL.labels(route="hvs")
_ROUTE_VIEWS = _ROUTER_QUERIES_TOTAL.labels(route="views")
_ROUTE_DECOMPOSER = _ROUTER_QUERIES_TOTAL.labels(route="decomposer")
_ROUTE_BACKEND = _ROUTER_QUERIES_TOTAL.labels(route="backend")


class ElindaEndpoint(Endpoint):
    """The composed eLinda endpoint of the paper's architecture.

    ``use_hvs`` / ``use_views`` / ``use_decomposer`` switches support
    the demo scenario
    "with the discussed solutions turned on and off" (Section 5).
    ``breaker`` is an optional circuit breaker guarding the backend
    (any object with ``allow()`` / ``record_success()`` /
    ``record_failure()`` / ``retry_after_ms()``).
    """

    def __init__(
        self,
        backend: Endpoint,
        hvs: Optional[HeavyQueryStore] = None,
        views=None,
        decomposer: Optional[Decomposer] = None,
        use_hvs: bool = True,
        use_views: bool = True,
        use_decomposer: bool = True,
        breaker=None,
    ):
        super().__init__()
        self.backend = backend
        self.hvs = hvs
        self.views = views
        self.decomposer = decomposer
        self.use_hvs = use_hvs
        self.use_views = use_views
        self.use_decomposer = use_decomposer
        self.breaker = breaker
        # Shape detection and execution look at the same queries: let the
        # aggregate layers read ASTs out of the backend's plan cache.
        if decomposer is not None and decomposer.plan_cache is None:
            decomposer.plan_cache = getattr(backend, "plan_cache", None)
        if views is not None and views.plan_cache is None:
            views.plan_cache = getattr(backend, "plan_cache", None)

    @property
    def dataset_version(self) -> int:
        return self.backend.dataset_version

    def query(
        self,
        query_text: str,
        *,
        quantum_ms: Optional[float] = None,
        page_size: Optional[int] = None,
        continuation: Optional[str] = None,
    ) -> EndpointResponse:
        paged = (
            quantum_ms is not None
            or page_size is not None
            or continuation is not None
        )
        # Continuation requests resume a suspended *backend* execution:
        # the HVS and decomposer only ever hold complete answers, so
        # consulting them mid-pagination could at best duplicate rows
        # already delivered.  Straight to the backend.
        if continuation is not None:
            response = self._query_backend(
                query_text,
                quantum_ms=quantum_ms,
                page_size=page_size,
                continuation=continuation,
                paged=True,
            )
            self._log(response)
            return response
        version = self.dataset_version
        # 1. Heavy-query store (complete cached answers, so an HVS hit
        # short-circuits paging too — the whole result in one response).
        if self.use_hvs and self.hvs is not None:
            cached = self.hvs.lookup(query_text, version)
            if cached is not None:
                _ROUTE_HVS.inc()
                self._log(cached)
                return cached
        # 2. Materialized chart views (delta-maintained, so `is_fresh`
        # holds across graph edits; untracked views behave like the
        # decomposer's build-once indexes and go stale instead).
        if self.use_views and self.views is not None and self.views.is_fresh:
            viewed = self.views.try_answer(query_text)
            if viewed is not None:
                _ROUTE_VIEWS.inc()
                self._log(viewed)
                return viewed
        # 3. Decomposer (only while its indexes reflect the current
        # knowledge base — they are rebuilt offline after updates).
        if (
            self.use_decomposer
            and self.decomposer is not None
            and self.decomposer.indexes.is_fresh
        ):
            decomposed = self.decomposer.try_answer(query_text)
            if decomposed is not None:
                _ROUTE_DECOMPOSER.inc()
                self._log(decomposed)
                return decomposed
        # 4. Backend, measuring runtime for heaviness detection.
        response = self._query_backend(
            query_text,
            quantum_ms=quantum_ms,
            page_size=page_size,
            continuation=None,
            paged=paged,
        )
        if self.use_hvs and self.hvs is not None:
            self._record_heavy(query_text, response, version)
        self._log(response)
        return response

    def _query_backend(
        self,
        query_text: str,
        quantum_ms: Optional[float],
        page_size: Optional[int],
        continuation: Optional[str],
        paged: bool,
    ) -> EndpointResponse:
        """One backend round-trip, through the circuit breaker."""
        if self.breaker is not None and not self.breaker.allow():
            from ..serve.breaker import CircuitOpenError

            raise CircuitOpenError(
                "backend circuit breaker is open and no fallback layer "
                "could answer",
                retry_after_ms=self.breaker.retry_after_ms(),
            )
        _ROUTE_BACKEND.inc()
        try:
            if paged:
                response = self.backend.query(
                    query_text,
                    quantum_ms=quantum_ms,
                    page_size=page_size,
                    continuation=continuation,
                )
            else:
                response = self.backend.query(query_text)
        except TransientWireError:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        return response

    def _record_heavy(
        self, query_text: str, response: EndpointResponse, version: int
    ) -> None:
        """Offer a backend answer to the HVS, if it is safe to cache.

        Partial pages never reach the store: their result and elapsed
        time describe one quantum, not the query.  Neither does an
        answer that raced a knowledge-base update — the version is
        re-read *after* execution and the record dropped on mismatch,
        otherwise a result computed against the old graph would be
        cached under (and served for) the new version.
        """
        if not response.complete or response.continuation is not None:
            return
        version_after = self.dataset_version
        if version_after != version:
            return
        self.hvs.record(
            query_text, response.result, response.elapsed_ms, version_after
        )
