"""The eLinda endpoint: HVS -> decomposer -> backend routing (Fig. 3).

"For each query to the eLinda endpoint, the system first checks if the
HVS encountered it before and determined it to be heavy.  If so, use the
result from the HVS, otherwise route it to the Virtuoso endpoint.
eLinda backend measures the run time of the routed queries" (Section 4).
Decomposable property expansions are intercepted before reaching the
backend, since "the eLinda decomposer can be used for all property
expansion queries".
"""

from __future__ import annotations

from typing import Optional

from ..endpoint.base import Endpoint, EndpointResponse
from ..obs.metrics import REGISTRY
from .decomposer import Decomposer
from .hvs import HeavyQueryStore

__all__ = ["ElindaEndpoint"]

_ROUTER_QUERIES_TOTAL = REGISTRY.counter(
    "repro_router_queries_total",
    "Queries answered by the eLinda endpoint, by which layer answered",
    labelnames=("route",),
)
_ROUTE_HVS = _ROUTER_QUERIES_TOTAL.labels(route="hvs")
_ROUTE_DECOMPOSER = _ROUTER_QUERIES_TOTAL.labels(route="decomposer")
_ROUTE_BACKEND = _ROUTER_QUERIES_TOTAL.labels(route="backend")


class ElindaEndpoint(Endpoint):
    """The composed eLinda endpoint of the paper's architecture.

    ``use_hvs`` / ``use_decomposer`` switches support the demo scenario
    "with the discussed solutions turned on and off" (Section 5).
    """

    def __init__(
        self,
        backend: Endpoint,
        hvs: Optional[HeavyQueryStore] = None,
        decomposer: Optional[Decomposer] = None,
        use_hvs: bool = True,
        use_decomposer: bool = True,
    ):
        super().__init__()
        self.backend = backend
        self.hvs = hvs
        self.decomposer = decomposer
        self.use_hvs = use_hvs
        self.use_decomposer = use_decomposer
        # Shape detection and execution look at the same queries: let the
        # decomposer read ASTs out of the backend's plan cache.
        if decomposer is not None and decomposer.plan_cache is None:
            decomposer.plan_cache = getattr(backend, "plan_cache", None)

    @property
    def dataset_version(self) -> int:
        return self.backend.dataset_version

    def query(self, query_text: str) -> EndpointResponse:
        version = self.dataset_version
        # 1. Heavy-query store.
        if self.use_hvs and self.hvs is not None:
            cached = self.hvs.lookup(query_text, version)
            if cached is not None:
                _ROUTE_HVS.inc()
                self._log(cached)
                return cached
        # 2. Decomposer (only while its indexes reflect the current
        # knowledge base — they are rebuilt offline after updates).
        if (
            self.use_decomposer
            and self.decomposer is not None
            and self.decomposer.indexes.is_fresh
        ):
            decomposed = self.decomposer.try_answer(query_text)
            if decomposed is not None:
                _ROUTE_DECOMPOSER.inc()
                self._log(decomposed)
                return decomposed
        # 3. Backend, measuring runtime for heaviness detection.
        _ROUTE_BACKEND.inc()
        response = self.backend.query(query_text)
        if self.use_hvs and self.hvs is not None:
            self.hvs.record(
                query_text, response.result, response.elapsed_ms, version
            )
        self._log(response)
        return response
