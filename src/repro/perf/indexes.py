"""Specialised indexes backing the eLinda decomposer (Section 4).

"Our system contains specialized indexes to accelerate heavy queries."
The heavy queries are the property expansions, whose nested aggregation
joins every member with every one of its triples.  The indexes
precompute, for every class and direction, the per-property subject and
triple counts — so a property expansion becomes a dictionary lookup
instead of a join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..rdf.dictionary import KIND_STRIDE
from ..rdf.graph import Graph
from ..rdf.terms import URI
from ..rdf.vocab import RDF
from ..core.model import Direction

__all__ = ["PropertyCount", "SpecializedIndexes"]

_RDF_TYPE = RDF.term("type")


@dataclass(frozen=True)
class PropertyCount:
    """Counts for one property within one class/direction entry."""

    prop: URI
    subject_count: int  # members featuring the property (coverage numerator)
    triple_count: int   # total member triples with the property


class SpecializedIndexes:
    """Precomputed per-class property statistics over one graph.

    Built eagerly from a graph snapshot; ``version`` records the graph
    version at build time so the router can detect staleness ("The HVS is
    cleared on any update" applies to these indexes, too).
    """

    def __init__(self, graph: Graph):
        self.version = graph.version
        self._graph = graph
        self._instances: Dict[URI, FrozenSet[URI]] = {}
        self._property_counts: Dict[
            Tuple[URI, Direction], List[PropertyCount]
        ] = {}
        self._build(graph)
        #: Number of index entries touched by lookups (drives the
        #: decomposer's simulated latency).
        self.entries_touched = 0

    def _build(self, graph: Graph) -> None:
        # The build runs entirely in ID space over the encoded indexes:
        # "is this a URI?" is an integer range check (URI-kind IDs sit
        # below KIND_STRIDE) and all counting hashes plain ints.  Terms
        # are decoded only for the keys that enter the public maps.
        dictionary = graph.dictionary
        decode = dictionary.decode
        rdf_type_id = dictionary.lookup(_RDF_TYPE)
        instances: Dict[int, set] = {}
        if rdf_type_id is not None:
            for s, _p, o in graph.triples_ids(None, rdf_type_id, None):
                if o < KIND_STRIDE and s < KIND_STRIDE:
                    instances.setdefault(o, set()).add(s)
        # Per-subject outgoing / per-object incoming property triple counts.
        out_counts: Dict[int, Dict[int, int]] = {}
        in_counts: Dict[int, Dict[int, int]] = {}
        for s, p, o in graph.triples_ids():
            if s < KIND_STRIDE:
                node_out = out_counts.setdefault(s, {})
                node_out[p] = node_out.get(p, 0) + 1
            if o < KIND_STRIDE:
                node_in = in_counts.setdefault(o, {})
                node_in[p] = node_in.get(p, 0) + 1
        self._instances = {
            decode(cls): frozenset(decode(member) for member in members)
            for cls, members in instances.items()
        }
        for cls_id, members in instances.items():
            cls = decode(cls_id)
            for direction, node_counts in (
                (Direction.OUTGOING, out_counts),
                (Direction.INCOMING, in_counts),
            ):
                per_property: Dict[int, List[int]] = {}
                for member in members:
                    for prop, count in node_counts.get(member, {}).items():
                        entry = per_property.setdefault(prop, [0, 0])
                        entry[0] += 1
                        entry[1] += count
                rows = [
                    PropertyCount(decode(prop), subjects, triples)
                    for prop, (subjects, triples) in per_property.items()
                ]
                rows.sort(key=lambda row: (-row.subject_count, row.prop.value))
                self._property_counts[(cls, direction)] = rows

    @property
    def is_fresh(self) -> bool:
        """Whether the source graph is unchanged since the build."""
        return self._graph.version == self.version

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def instances(self, cls: URI) -> FrozenSet[URI]:
        """The instance set of ``cls`` (empty when unknown)."""
        return self._instances.get(cls, frozenset())

    def instance_count(self, cls: URI) -> int:
        return len(self._instances.get(cls, ()))

    def classes(self) -> List[URI]:
        """All classes with at least one instance."""
        return sorted(self._instances, key=lambda cls: cls.value)

    def property_expansion(
        self, classes: List[URI], direction: Direction
    ) -> Optional[List[PropertyCount]]:
        """Per-property counts for the members of all given classes.

        With a single class (or when one class's instance set is
        contained in all others — always true along a materialised
        subclass chain) the precomputed entry is returned directly.
        Returns None when any class is unknown to the index.
        """
        if not classes:
            return None
        sets = []
        for cls in classes:
            members = self._instances.get(cls)
            if members is None:
                return None
            sets.append((cls, members))
        sets.sort(key=lambda pair: len(pair[1]))
        smallest_cls, smallest = sets[0]
        if all(smallest <= members for _cls, members in sets[1:]):
            rows = self._property_counts.get((smallest_cls, direction), [])
            self.entries_touched += len(rows) + len(smallest)
            return list(rows)
        # Arbitrary intersections (e.g. multi-typed sets that do not nest)
        # are not covered by the per-class precomputation; signal the
        # router to fall through to the backend.
        return None
