"""Specialised indexes backing the eLinda decomposer (Section 4).

"Our system contains specialized indexes to accelerate heavy queries."
The heavy queries are the property expansions, whose nested aggregation
joins every member with every one of its triples.  The indexes
precompute, for every class and direction, the per-property subject and
triple counts — so a property expansion becomes a dictionary lookup
instead of a join.

Since PR 9 the tables themselves live in
:class:`repro.perf.views.MaterializedViews`; this class is the
build-once façade over them, kept for API compatibility.  It does not
register a mutation listener, so — exactly as before — ``version``
records the build-time graph version and ``is_fresh`` goes false on the
first mutation, making the router fall back to the backend until the
indexes are rebuilt.  Prefer ``MaterializedViews`` directly for indexes
that stay fresh across edits.
"""

from __future__ import annotations

from .views import MaterializedViews, PropertyCount

__all__ = ["PropertyCount", "SpecializedIndexes"]


class SpecializedIndexes(MaterializedViews):
    """Build-once (non-tracking) materialized views.

    Built eagerly from a graph snapshot; ``version`` records the graph
    version at build time so the router can detect staleness ("The HVS
    is cleared on any update" applies to these indexes, too).
    """

    def __init__(self, graph):
        super().__init__(graph, track=False)
