"""Version-aware LRU cache of parsed and optimized query plans.

Parsing and optimizing a SPARQL query costs real wall time per request;
exploration frontends (the paper's Section 3 UI) re-issue the same
parameterised chart queries constantly.  The plan cache memoises the
full front half of the engine — query text → AST → algebra → optimized
algebra — keyed by whitespace-normalised query text (the same
:func:`~repro.perf.hvs.normalize_query` canonicalisation the HVS uses).

Optimized plans embed statistics-driven decisions (join order), so each
entry remembers the graph ``version`` it was planned against and is
re-derived — never served stale — once the graph changes.  Entries whose
plan is purely structural (no graph supplied at planning time) have
``stats_version is None`` and survive updates.

Hits, misses, evictions, and invalidations are exported through the
metrics registry (``repro metrics``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..obs.metrics import REGISTRY
from ..sparql.algebra import AlgebraNode, translate_query
from ..sparql.ast import AskQuery, Query, SelectQuery
from ..sparql.errors import SparqlEvalError
from ..sparql.parser import parse_query
from .hvs import normalize_query

__all__ = ["CachedPlan", "PlanCache", "build_plan"]

_REQUESTS_TOTAL = REGISTRY.counter(
    "repro_plancache_requests_total",
    "Plan-cache lookups by outcome",
    labelnames=("outcome",),
)
_HITS = _REQUESTS_TOTAL.labels(outcome="hit")
_MISSES = _REQUESTS_TOTAL.labels(outcome="miss")
_EVICTIONS_TOTAL = REGISTRY.counter(
    "repro_plancache_evictions_total",
    "Plan-cache entries evicted by LRU capacity pressure",
)
_INVALIDATIONS_TOTAL = REGISTRY.counter(
    "repro_plancache_invalidations_total",
    "Plan-cache entries re-derived because the graph version moved on",
)
_SIZE = REGISTRY.gauge("repro_plancache_size", "Plans currently cached")


@dataclass
class CachedPlan:
    """One cached front-half result for a query text.

    ``algebra`` is the plan to execute (optimized when an optimizer ran,
    raw otherwise); ``raw_algebra`` is always the direct translation —
    EXPLAIN renders both.  ``algebra`` is None for query forms the
    algebra does not cover (CONSTRUCT); callers then fall back to
    ``query``.  ``stats_version`` is the graph version the plan's
    cost-based decisions were derived from, or None when no statistics
    were consulted.
    """

    query: Query
    algebra: Optional[AlgebraNode]
    raw_algebra: Optional[AlgebraNode]
    stats_version: Optional[int]
    notes: Tuple[Tuple[str, str], ...] = ()
    #: Lazily compiled physical-plan factory (see :meth:`physical_factory`).
    physical: Optional[object] = None

    def physical_factory(self):
        """The compiled physical plan for this entry, built on first use.

        Compilation (BGP ordering, filter slots, join-key analysis) runs
        once per cached plan; every page of a paginated execution then
        instantiates a fresh operator tree from the same factory.  The
        factory shares the entry's lifetime, so graph-version
        invalidation of the entry also drops the physical plan.
        """
        if self.physical is None:
            if self.algebra is None:
                raise SparqlEvalError(
                    "query form has no physical plan (CONSTRUCT runs on "
                    "the recursive evaluator only)"
                )
            from ..sparql.planner import PhysicalPlanFactory

            self.physical = PhysicalPlanFactory(self.query, self.algebra)
        return self.physical


class PlanCache:
    """LRU query-text → plan cache with graph-version invalidation."""

    def __init__(self, capacity: int = 128):
        if capacity <= 0:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        # An empty cache is still a cache; never collapse to falsy.
        return True

    def __contains__(self, query_text: str) -> bool:
        return normalize_query(query_text) in self._entries

    def clear(self) -> None:
        self._entries.clear()
        _SIZE.set(0)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, query_text: str, graph=None, optimize: bool = True) -> CachedPlan:
        """The (possibly cached) plan for ``query_text``.

        ``graph`` supplies both the statistics for cost-based planning
        and the version stamp for invalidation; with ``optimize=False``
        (or no graph) the cached plan is the raw translation.
        """
        key = normalize_query(query_text)
        entry = self._entries.get(key)
        if entry is not None:
            if (
                entry.stats_version is not None
                and graph is not None
                and entry.stats_version != graph.version
            ):
                # Planned against a graph state that no longer exists.
                del self._entries[key]
                _INVALIDATIONS_TOTAL.inc()
            else:
                self._entries.move_to_end(key)
                _HITS.inc()
                return entry
        _MISSES.inc()
        entry = build_plan(query_text, graph, optimize)
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            _EVICTIONS_TOTAL.inc()
        _SIZE.set(len(self._entries))
        return entry

    def parse(self, query_text: str) -> Query:
        """AST-only lookup (used by the decomposer's shape matching)."""
        return self.get(query_text, graph=None, optimize=False).query

def build_plan(query_text: str, graph=None, optimize: bool = True) -> CachedPlan:
    """Parse, translate, and (optionally) optimize one query text.

    The uncached front half of the engine; :class:`PlanCache` memoises
    this function, and cache-less callers use it directly.
    """
    query = parse_query(query_text)
    if not isinstance(query, (SelectQuery, AskQuery)):
        # CONSTRUCT has no algebra form here; cache the AST so the
        # evaluator at least skips re-parsing.
        return CachedPlan(query, None, None, None)
    raw = translate_query(query)
    if not optimize:
        return CachedPlan(query, raw, raw, None)
    from ..sparql.optimizer import optimize as run_optimizer

    optimized, report = run_optimizer(raw, graph=graph)
    return CachedPlan(
        query,
        optimized,
        raw,
        graph.version if graph is not None else None,
        tuple(report.notes),
    )
