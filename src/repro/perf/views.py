"""Materialized chart views with incremental maintenance.

The follow-up paper *Efficiently Charting RDF* is about making exactly
eLinda's bar-chart aggregations fast.  Where the HVS caches whole result
sets per query string (and flushes on any update), this module
materializes the aggregate tables *behind* the three expansion shapes —

* subclass instance counts (the subclass expansion and bar heights),
* per-class / per-direction property (subject, triple) counts (the
  property expansion, the paper's heavy query), and
* connection (object-type) counts (the Connections tab),

— as ID-keyed count tables, built once in ID space exactly like the old
``SpecializedIndexes._build`` and then **maintained incrementally**: the
graph notifies the views of every added/removed triple through the
mutation-delta hook (:meth:`repro.rdf.graph.Graph.add_listener`), and
each delta updates the affected counters in time proportional to the
mutated node's degree.  A chart expansion answered from the views is
O(bars) regardless of member count, and — unlike the HVS and the
build-once indexes — stays correct while the graph is being edited.

``SpecializedIndexes`` is now a build-once façade over this class (see
:mod:`repro.perf.indexes`); the decomposer consumes the same tables.

Connection tables are materialized lazily per ``(class, property,
direction)`` on first lookup (the key space is quadratic, the queried
keys are few) and maintained incrementally from then on; a membership
change of a class drops its materialized connection keys, which simply
re-materialize on the next lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.model import Direction
from ..endpoint.base import EndpointResponse, observe_response
from ..endpoint.clock import SimClock
from ..endpoint.cost import VIEWS_PROFILE, CostModel
from ..obs.metrics import REGISTRY
from ..rdf.dictionary import KIND_STRIDE
from ..rdf.terms import Literal, URI
from ..rdf.vocab import RDF, RDFS, XSD
from ..sparql.ast import (
    AggregateExpr,
    OptionalPattern,
    SelectQuery,
    TriplePatternNode,
    Var,
    VarExpr,
)
from ..sparql.errors import SparqlError
from ..sparql.parser import parse_query
from ..sparql.results import SelectResult

__all__ = [
    "PropertyCount",
    "MaterializedViews",
    "SubclassChartSpec",
    "MemberCountSpec",
    "ObjectChartSpec",
    "match_subclass_chart",
    "match_member_count",
    "match_object_chart",
]

_RDF_TYPE = RDF.term("type")
_RDFS_SUBCLASS = RDFS.term("subClassOf")
_XSD_INTEGER = XSD.term("integer").value

_OUT = 0
_IN = 1
_DIR_INDEX = {Direction.OUTGOING: _OUT, Direction.INCOMING: _IN}

_VIEW_LOOKUPS_TOTAL = REGISTRY.counter(
    "repro_view_lookups_total",
    "Chart-shape lookups against the materialized views, by shape and outcome",
    labelnames=("shape", "outcome"),
)
_VIEW_DELTAS_TOTAL = REGISTRY.counter(
    "repro_view_deltas_total",
    "Graph mutation deltas applied to the materialized view tables",
    labelnames=("op",),
)
_VIEW_REBUILDS_TOTAL = REGISTRY.counter(
    "repro_view_rebuilds_total",
    "View (re)builds: full scans and lazy connection-table materializations",
    labelnames=("reason",),
)
_DELTA_ADD = _VIEW_DELTAS_TOTAL.labels(op="add")
_DELTA_REMOVE = _VIEW_DELTAS_TOTAL.labels(op="remove")


@dataclass(frozen=True)
class PropertyCount:
    """Counts for one property within one class/direction entry."""

    prop: URI
    subject_count: int  # members featuring the property (coverage numerator)
    triple_count: int   # total member triples with the property


# ----------------------------------------------------------------------
# Shape detection (the decomposer's match_property_expansion covers the
# property-expansion shape; these cover the other chart shapes)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SubclassChartSpec:
    """A recognised subclass-expansion chart query."""

    classes: tuple
    parent: URI
    #: projection variable names for (subclass, member count)
    var_names: tuple


@dataclass(frozen=True)
class MemberCountSpec:
    """A recognised bar-height count query."""

    classes: tuple
    #: projection variable name of the count
    var_name: str


@dataclass(frozen=True)
class ObjectChartSpec:
    """A recognised object-expansion (connections) chart query."""

    classes: tuple
    prop: URI
    direction: Direction
    #: projection variable names for (object type, node count)
    var_names: tuple


def _is_var(term, name: Optional[str] = None) -> bool:
    return isinstance(term, Var) and (name is None or term.name == name)


def _parse(query_text: str, query):
    if query is not None:
        return query
    try:
        return parse_query(query_text)
    except SparqlError:
        return None


def _count_distinct_var(expression) -> Optional[str]:
    """The argument variable of a ``COUNT(DISTINCT ?x)`` expression."""
    if (
        isinstance(expression, AggregateExpr)
        and expression.name == "COUNT"
        and expression.distinct
        and isinstance(expression.argument, VarExpr)
    ):
        return expression.argument.var.name
    return None


def match_subclass_chart(query_text: str, query=None) -> Optional[SubclassChartSpec]:
    """Detect the subclass-chart shape of
    :func:`repro.core.queries.subclass_chart_query`; None when unmatched.

    .. code-block:: sparql

        SELECT ?sub (COUNT(DISTINCT ?s) AS ?count) WHERE {
          ?sub rdfs:subClassOf <parent> .
          OPTIONAL {
            ?s rdf:type <C1> .  ...  ?s rdf:type <Ck> .
            ?s rdf:type ?sub .
          }
        } GROUP BY ?sub ORDER BY DESC(?count)

    The member pattern must consist solely of ``rdf:type`` constraints.
    """
    query = _parse(query_text, query)
    if not isinstance(query, SelectQuery) or query.projections is None:
        return None
    if len(query.group_by) != 1 or not isinstance(query.group_by[0], VarExpr):
        return None
    sub_var = query.group_by[0].var.name
    if len(query.projections) != 2:
        return None
    if (
        query.projections[0].expression is not None
        or query.projections[0].var.name != sub_var
    ):
        return None
    member_var = _count_distinct_var(query.projections[1].expression)
    if member_var is None or member_var == sub_var:
        return None
    count_var = query.projections[1].var.name
    if query.having or query.distinct or query.limit is not None or query.offset:
        return None
    children = query.where.children
    if len(children) != 2:
        return None
    anchor, optional = children
    if (
        not isinstance(anchor, TriplePatternNode)
        or not _is_var(anchor.subject, sub_var)
        or anchor.predicate != _RDFS_SUBCLASS
        or not isinstance(anchor.object, URI)
    ):
        return None
    if not isinstance(optional, OptionalPattern):
        return None
    type_classes: List[URI] = []
    link_seen = False
    for child in optional.pattern.children:
        if (
            not isinstance(child, TriplePatternNode)
            or not _is_var(child.subject, member_var)
            or child.predicate != _RDF_TYPE
        ):
            return None
        if isinstance(child.object, URI):
            type_classes.append(child.object)
        elif _is_var(child.object, sub_var) and not link_seen:
            link_seen = True
        else:
            return None
    if not link_seen or not type_classes:
        return None
    return SubclassChartSpec(
        classes=tuple(type_classes),
        parent=anchor.object,
        var_names=(sub_var, count_var),
    )


def match_member_count(query_text: str, query=None) -> Optional[MemberCountSpec]:
    """Detect the bar-height shape of
    :func:`repro.core.queries.count_query` over a pure type pattern:
    ``SELECT (COUNT(DISTINCT ?s) AS ?count) WHERE { ?s rdf:type <Ci> . ... }``.
    """
    query = _parse(query_text, query)
    if not isinstance(query, SelectQuery) or query.projections is None:
        return None
    if len(query.projections) != 1 or query.group_by:
        return None
    member_var = _count_distinct_var(query.projections[0].expression)
    if member_var is None:
        return None
    if query.having or query.distinct or query.limit is not None or query.offset:
        return None
    type_classes: List[URI] = []
    for child in query.where.children:
        if (
            not isinstance(child, TriplePatternNode)
            or not _is_var(child.subject, member_var)
            or child.predicate != _RDF_TYPE
            or not isinstance(child.object, URI)
        ):
            return None
        type_classes.append(child.object)
    if not type_classes:
        return None
    return MemberCountSpec(
        classes=tuple(type_classes), var_name=query.projections[0].var.name
    )


def match_object_chart(query_text: str, query=None) -> Optional[ObjectChartSpec]:
    """Detect the connections-chart shape of
    :func:`repro.core.queries.object_chart_query`; None when unmatched.

    .. code-block:: sparql

        SELECT ?type (COUNT(DISTINCT ?node) AS ?count) WHERE {
          ?s rdf:type <C1> .  ...  ?s rdf:type <Ck> .
          ?s <prop> ?node .        # or  ?node <prop> ?s .  for incoming
          ?node rdf:type ?type .
        } GROUP BY ?type ORDER BY DESC(?count)

    The bar's own property-existence line (``?s <prop> ?vN .`` with an
    otherwise unused variable, added by ``MemberPattern.and_property``)
    is accepted as redundant — the chart's edge line subsumes it.
    """
    query = _parse(query_text, query)
    if not isinstance(query, SelectQuery) or query.projections is None:
        return None
    if len(query.group_by) != 1 or not isinstance(query.group_by[0], VarExpr):
        return None
    type_var = query.group_by[0].var.name
    if len(query.projections) != 2:
        return None
    if (
        query.projections[0].expression is not None
        or query.projections[0].var.name != type_var
    ):
        return None
    node_var = _count_distinct_var(query.projections[1].expression)
    if node_var is None or node_var == type_var:
        return None
    count_var = query.projections[1].var.name
    if query.having or query.distinct or query.limit is not None or query.offset:
        return None
    children = query.where.children
    if not all(isinstance(child, TriplePatternNode) for child in children):
        return None
    uses: Dict[str, int] = {}
    for child in children:
        for term in (child.subject, child.predicate, child.object):
            if isinstance(term, Var):
                uses[term.name] = uses.get(term.name, 0) + 1
    node_type = [
        child
        for child in children
        if _is_var(child.subject, node_var)
        and child.predicate == _RDF_TYPE
        and _is_var(child.object, type_var)
    ]
    if len(node_type) != 1 or uses.get(type_var) != 1 or uses.get(node_var) != 2:
        return None
    edges = [
        child
        for child in children
        if child is not node_type[0]
        and (_is_var(child.subject, node_var) or _is_var(child.object, node_var))
    ]
    if len(edges) != 1 or not isinstance(edges[0].predicate, URI):
        return None
    edge = edges[0]
    prop = edge.predicate
    if _is_var(edge.object, node_var) and _is_var(edge.subject):
        member_var = edge.subject.name
        direction = Direction.OUTGOING
    elif _is_var(edge.subject, node_var) and _is_var(edge.object):
        member_var = edge.object.name
        direction = Direction.INCOMING
    else:
        return None
    if member_var in (node_var, type_var):
        return None
    type_classes: List[URI] = []
    for child in children:
        if child is edge or child is node_type[0]:
            continue
        if (
            _is_var(child.subject, member_var)
            and child.predicate == _RDF_TYPE
            and isinstance(child.object, URI)
        ):
            type_classes.append(child.object)
            continue
        if child.predicate == prop:
            # The bar pattern's own "?s <prop> ?vN" existence line.
            if (
                direction is Direction.OUTGOING
                and _is_var(child.subject, member_var)
                and isinstance(child.object, Var)
                and uses.get(child.object.name) == 1
            ):
                continue
            if (
                direction is Direction.INCOMING
                and _is_var(child.object, member_var)
                and isinstance(child.subject, Var)
                and uses.get(child.subject.name) == 1
            ):
                continue
        return None
    if not type_classes:
        return None
    return ObjectChartSpec(
        classes=tuple(type_classes),
        prop=prop,
        direction=direction,
        var_names=(type_var, count_var),
    )


# ----------------------------------------------------------------------
# The view store
# ----------------------------------------------------------------------


class MaterializedViews:
    """ID-keyed aggregate tables behind the three chart shapes.

    Built eagerly from the graph; with ``track=True`` (the default, on
    stores that support mutation listeners) the instance registers
    itself as a :meth:`~repro.rdf.graph.Graph.add_listener` delta
    listener and stays current across ``add``/``remove``/``bulk_load``
    without rebuilding — ``is_fresh`` then never goes stale.  With
    ``track=False`` it behaves like the old build-once
    ``SpecializedIndexes``: ``version`` records the build version and
    ``is_fresh`` compares it against the live graph.
    """

    def __init__(
        self,
        graph,
        clock: Optional[SimClock] = None,
        cost_model: CostModel = VIEWS_PROFILE,
        plan_cache=None,
        track: bool = True,
    ):
        self.graph = graph
        self._graph = graph  # SpecializedIndexes back-compat alias
        self.clock = clock or SimClock()
        self.cost_model = cost_model
        self.plan_cache = plan_cache
        self._track = bool(track) and hasattr(graph, "add_listener")
        self.hits = 0
        self.misses = 0
        #: Number of index entries touched by lookups (drives the
        #: decomposer's simulated latency; views charge per bar instead).
        self.entries_touched = 0
        # Cached predicate IDs; None until the term is interned.
        self._rdf_type_id: Optional[int] = None
        self._subclass_id: Optional[int] = None
        # --- eager ID-keyed tables -----------------------------------
        # class id -> set of member ids (URI members only)
        self._instances: Dict[int, Set[int]] = {}
        # node id -> set of class ids (reverse of _instances)
        self._types: Dict[int, Set[int]] = {}
        # parent class id -> set of direct subclass ids
        self._subclasses: Dict[int, Set[int]] = {}
        # per direction: node id -> property id -> triple count
        self._props: Tuple[Dict[int, Dict[int, int]], ...] = ({}, {})
        # (class id, direction) -> property id -> [subject_count, triple_count]
        self._class_props: Dict[Tuple[int, int], Dict[int, List[int]]] = {}
        # --- lazy connection tables ----------------------------------
        # (class id, property id, direction) -> connected node id -> refcount
        self._conn: Dict[Tuple[int, int, int], Dict[int, int]] = {}
        self._build()
        _VIEW_REBUILDS_TOTAL.labels(reason="initial").inc()
        if self._track:
            graph.add_listener(self)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def _build(self) -> None:
        # Entirely in ID space over the encoded indexes: "is this a URI?"
        # is an integer range check (URI-kind IDs sit below KIND_STRIDE)
        # and all counting hashes plain ints.  Terms are decoded only at
        # the lookup boundary.
        graph = self.graph
        dictionary = graph.dictionary
        instances = self._instances
        types = self._types
        self._rdf_type_id = dictionary.lookup(_RDF_TYPE)
        if self._rdf_type_id is not None:
            for s, _p, o in graph.triples_ids(None, self._rdf_type_id, None):
                if o < KIND_STRIDE and s < KIND_STRIDE:
                    instances.setdefault(o, set()).add(s)
                    types.setdefault(s, set()).add(o)
        self._subclass_id = dictionary.lookup(_RDFS_SUBCLASS)
        if self._subclass_id is not None:
            for s, _p, o in graph.triples_ids(None, self._subclass_id, None):
                if o < KIND_STRIDE and s < KIND_STRIDE:
                    self._subclasses.setdefault(o, set()).add(s)
        out_counts, in_counts = self._props
        for s, p, o in graph.triples_ids():
            if s < KIND_STRIDE:
                node_out = out_counts.setdefault(s, {})
                node_out[p] = node_out.get(p, 0) + 1
            if o < KIND_STRIDE:
                node_in = in_counts.setdefault(o, {})
                node_in[p] = node_in.get(p, 0) + 1
        for cls, members in instances.items():
            for direction, node_counts in ((_OUT, out_counts), (_IN, in_counts)):
                per_property: Dict[int, List[int]] = {}
                for member in members:
                    for prop, count in node_counts.get(member, {}).items():
                        entry = per_property.setdefault(prop, [0, 0])
                        entry[0] += 1
                        entry[1] += count
                if per_property:
                    self._class_props[(cls, direction)] = per_property
        self.version = graph.version

    def _rebuild(self, reason: str) -> None:
        self._instances = {}
        self._types = {}
        self._subclasses = {}
        self._props = ({}, {})
        self._class_props = {}
        self._conn = {}
        self._build()
        _VIEW_REBUILDS_TOTAL.labels(reason=reason).inc()

    def detach(self) -> None:
        """Stop tracking graph mutations (freshness becomes version-based)."""
        if self._track:
            self.graph.remove_listener(self)
            self._track = False

    @property
    def is_fresh(self) -> bool:
        """Whether lookups reflect the graph's current state.

        Tracked views are maintained by mutation deltas and never go
        stale; untracked (build-once) views compare versions.
        """
        return self._track or self.graph.version == self.version

    # ------------------------------------------------------------------
    # Delta maintenance (Graph mutation-listener protocol)
    # ------------------------------------------------------------------

    def on_added(self, s: int, p: int, o: int) -> None:
        self._apply_delta(s, p, o, 1)
        _DELTA_ADD.inc()

    def on_removed(self, s: int, p: int, o: int) -> None:
        self._apply_delta(s, p, o, -1)
        _DELTA_REMOVE.inc()

    def on_cleared(self) -> None:
        self._rebuild(reason="clear")

    def _apply_delta(self, s: int, p: int, o: int, sign: int) -> None:
        # rdf:type / rdfs:subClassOf may have been interned by this very
        # mutation; resolve lazily until found (IDs are stable after).
        if self._rdf_type_id is None:
            self._rdf_type_id = self.graph.dictionary.lookup(_RDF_TYPE)
        if self._subclass_id is None:
            self._subclass_id = self.graph.dictionary.lookup(_RDFS_SUBCLASS)
        s_is_uri = s < KIND_STRIDE
        o_is_uri = o < KIND_STRIDE
        # 1. Generic edge accounting against the *pre-mutation* class
        # membership (every triple is an edge — rdf:type included).
        if s_is_uri:
            self._edge_delta(_OUT, s, p, o, sign)
        if o_is_uri:
            self._edge_delta(_IN, o, p, s, sign)
        # 2. Membership / hierarchy maintenance, folding the node's full
        # per-property counts into (or out of) the class entry.
        if p == self._rdf_type_id and s_is_uri and o_is_uri:
            if sign > 0:
                self._member_added(o, s)
            else:
                self._member_removed(o, s)
        elif p == self._subclass_id and s_is_uri and o_is_uri:
            if sign > 0:
                self._subclasses.setdefault(o, set()).add(s)
            else:
                subs = self._subclasses.get(o)
                if subs is not None:
                    subs.discard(s)
                    if not subs:
                        del self._subclasses[o]
        self.version = self.graph.version

    def _edge_delta(self, direction: int, node: int, prop: int, other: int, sign: int) -> None:
        side = self._props[direction]
        node_props = side.setdefault(node, {})
        old = node_props.get(prop, 0)
        new = old + sign
        if new:
            node_props[prop] = new
        else:
            node_props.pop(prop, None)
        if not node_props:
            del side[node]
        for cls in self._types.get(node, ()):
            table = self._class_props.setdefault((cls, direction), {})
            entry = table.setdefault(prop, [0, 0])
            entry[1] += sign
            if sign > 0 and old == 0:
                entry[0] += 1
            elif sign < 0 and new == 0:
                entry[0] -= 1
            if entry[0] == 0 and entry[1] == 0:
                del table[prop]
            if not table:
                del self._class_props[(cls, direction)]
            conn = self._conn.get((cls, prop, direction))
            if conn is not None and other < KIND_STRIDE:
                refcount = conn.get(other, 0) + sign
                if refcount:
                    conn[other] = refcount
                else:
                    conn.pop(other, None)

    def _member_added(self, cls: int, member: int) -> None:
        self._instances.setdefault(cls, set()).add(member)
        self._types.setdefault(member, set()).add(cls)
        for direction in (_OUT, _IN):
            node_props = self._props[direction].get(member)
            if node_props:
                table = self._class_props.setdefault((cls, direction), {})
                for prop, count in node_props.items():
                    entry = table.setdefault(prop, [0, 0])
                    entry[0] += 1
                    entry[1] += count
        self._drop_connections(cls)

    def _member_removed(self, cls: int, member: int) -> None:
        members = self._instances.get(cls)
        if members is None or member not in members:
            return
        members.discard(member)
        if not members:
            del self._instances[cls]
        types = self._types.get(member)
        if types is not None:
            types.discard(cls)
            if not types:
                del self._types[member]
        for direction in (_OUT, _IN):
            node_props = self._props[direction].get(member)
            if not node_props:
                continue
            key = (cls, direction)
            table = self._class_props.get(key)
            if table is None:
                continue
            for prop, count in node_props.items():
                entry = table.get(prop)
                if entry is None:
                    continue
                entry[0] -= 1
                entry[1] -= count
                if entry[0] == 0 and entry[1] == 0:
                    del table[prop]
            if not table:
                del self._class_props[key]
        self._drop_connections(cls)

    def _drop_connections(self, cls: int) -> None:
        # A membership change invalidates the class's materialized
        # connection tables; they re-materialize lazily on next lookup.
        doomed = [key for key in self._conn if key[0] == cls]
        for key in doomed:
            del self._conn[key]

    # ------------------------------------------------------------------
    # Lookups (term-space boundary)
    # ------------------------------------------------------------------

    def _instance_ids(self, cls: URI) -> Optional[Set[int]]:
        cls_id = self.graph.dictionary.lookup(cls)
        if cls_id is None:
            return None
        return self._instances.get(cls_id)

    def instances(self, cls: URI) -> FrozenSet[URI]:
        """The instance set of ``cls`` (empty when unknown)."""
        members = self._instance_ids(cls)
        if not members:
            return frozenset()
        decode = self.graph.dictionary.decode
        return frozenset(decode(member) for member in members)

    def instance_count(self, cls: URI) -> int:
        members = self._instance_ids(cls)
        return len(members) if members else 0

    def classes(self) -> List[URI]:
        """All classes with at least one instance."""
        decode = self.graph.dictionary.decode
        return sorted(
            (decode(cls) for cls in self._instances), key=lambda cls: cls.value
        )

    def _chain_base(self, classes) -> Optional[Tuple[int, Set[int]]]:
        """The smallest class ID + members along a nested class chain.

        Returns None when a class is unknown or the instance sets do not
        nest (arbitrary intersections are not covered by the per-class
        tables; the router falls through to the backend).
        """
        if not classes:
            return None
        lookup = self.graph.dictionary.lookup
        pairs = []
        for cls in classes:
            cls_id = lookup(cls)
            members = self._instances.get(cls_id) if cls_id is not None else None
            if members is None:
                return None
            pairs.append((cls_id, members))
        pairs.sort(key=lambda pair: len(pair[1]))
        smallest_id, smallest = pairs[0]
        if not all(smallest <= members for _cls, members in pairs[1:]):
            return None
        return smallest_id, smallest

    def property_expansion(
        self, classes: List[URI], direction: Direction
    ) -> Optional[List[PropertyCount]]:
        """Per-property counts for the members of all given classes.

        With a single class (or when one class's instance set is
        contained in all others — always true along a materialised
        subclass chain) the maintained entry is decoded directly, in
        O(bars).  Returns None when any class is unknown to the views.
        """
        base = self._chain_base(classes)
        if base is None:
            return None
        cls_id, members = base
        table = self._class_props.get((cls_id, _DIR_INDEX[direction]), {})
        decode = self.graph.dictionary.decode
        rows = [
            PropertyCount(decode(prop), subjects, triples)
            for prop, (subjects, triples) in table.items()
        ]
        rows.sort(key=lambda row: (-row.subject_count, row.prop.value))
        self.entries_touched += len(rows) + len(members)
        return rows

    def member_count(self, classes) -> Optional[int]:
        """``COUNT(DISTINCT ?s)`` over the intersection of type constraints.

        Unlike the chain-gated expansions this is exact for arbitrary
        intersections — the instance ID sets are at hand.  Returns None
        only when no class was given.
        """
        if not classes:
            return None
        sets = []
        for cls in classes:
            members = self._instance_ids(cls)
            if not members:
                return 0
            sets.append(members)
        sets.sort(key=len)
        base = sets[0]
        for other in sets[1:]:
            base = base & other
            if not base:
                return 0
        return len(base)

    def subclass_chart(
        self, classes, parent: URI
    ) -> Optional[List[Tuple[URI, int]]]:
        """Per-direct-subclass member counts under the given type pattern.

        Row per subclass (zero counts included, mirroring the OPTIONAL
        in the generated query), sorted by descending count.
        """
        if not classes:
            return None
        dictionary = self.graph.dictionary
        parent_id = dictionary.lookup(parent)
        subs = self._subclasses.get(parent_id, ()) if parent_id is not None else ()
        sets = []
        for cls in classes:
            members = self._instance_ids(cls)
            if not members:
                sets = None
                break
            sets.append(members)
        base: Set[int] = set()
        if sets:
            sets.sort(key=len)
            base = sets[0]
            for other in sets[1:]:
                base = base & other
        decode = dictionary.decode
        rows = []
        for sub in subs:
            members = self._instances.get(sub)
            count = len(members & base) if (members and base) else 0
            rows.append((decode(sub), count))
        rows.sort(key=lambda row: (-row[1], row[0].value))
        return rows

    def connection_expansion(
        self, classes, prop: URI, direction: Direction
    ) -> Optional[List[Tuple[URI, int]]]:
        """Connected nodes of the members via ``prop``, grouped by type.

        Served from the lazily materialized refcount table for the
        chain's smallest class; None when the class sets do not nest.
        """
        if not classes:
            return None
        known = [cls for cls in classes if self._instance_ids(cls)]
        if len(known) < len(classes):
            # Some class has no instances: no members, no connections.
            return []
        base = self._chain_base(classes)
        if base is None:
            return None
        cls_id, _members = base
        prop_id = self.graph.dictionary.lookup(prop)
        if prop_id is None:
            return []
        table = self._connection_table(cls_id, prop_id, _DIR_INDEX[direction])
        counts: Dict[int, int] = {}
        for node, refcount in table.items():
            if refcount <= 0:
                continue
            for cls in self._types.get(node, ()):
                counts[cls] = counts.get(cls, 0) + 1
        decode = self.graph.dictionary.decode
        rows = [(decode(cls), count) for cls, count in counts.items()]
        rows.sort(key=lambda row: (-row[1], row[0].value))
        return rows

    def _connection_table(
        self, cls_id: int, prop_id: int, direction: int
    ) -> Dict[int, int]:
        key = (cls_id, prop_id, direction)
        table = self._conn.get(key)
        if table is not None:
            return table
        table = {}
        members = self._instances.get(cls_id, ())
        graph = self.graph
        if direction == _OUT:
            for member in members:
                for _s, _p, node in graph.triples_ids(member, prop_id, None):
                    if node < KIND_STRIDE:
                        table[node] = table.get(node, 0) + 1
        else:
            for member in members:
                for node, _p, _o in graph.triples_ids(None, prop_id, member):
                    if node < KIND_STRIDE:
                        table[node] = table.get(node, 0) + 1
        self._conn[key] = table
        _VIEW_REBUILDS_TOTAL.labels(reason="connection").inc()
        return table

    # ------------------------------------------------------------------
    # Endpoint-facing answering
    # ------------------------------------------------------------------

    def try_answer(self, query_text: str, query=None) -> Optional[EndpointResponse]:
        """Answer a recognised chart query from the views, or None."""
        parsed = query
        if parsed is None and self.plan_cache is not None:
            # Shape matching happens per request; the cached AST makes it
            # a pure tree walk instead of a parse + walk.
            try:
                parsed = self.plan_cache.parse(query_text)
            except SparqlError:
                parsed = None
        if parsed is None:
            try:
                parsed = parse_query(query_text)
            except SparqlError:
                return self._miss("other")
        # Property expansion — the paper's heavy query — first: it is by
        # far the most frequent view-served shape.
        from .decomposer import match_property_expansion

        prop_spec = match_property_expansion(query_text, query=parsed)
        if prop_spec is not None:
            rows = self.property_expansion(
                list(prop_spec.classes), prop_spec.direction
            )
            if rows is None:
                return self._miss("property")
            prop_var, count_var, sum_var = prop_spec.var_names
            bindings = [
                {
                    prop_var: row.prop,
                    count_var: _int_literal(row.subject_count),
                    sum_var: _int_literal(row.triple_count),
                }
                for row in rows
            ]
            result = SelectResult([prop_var, count_var, sum_var], bindings)
            return self._hit("property", result, query_text)
        sub_spec = match_subclass_chart(query_text, query=parsed)
        if sub_spec is not None:
            pairs = self.subclass_chart(list(sub_spec.classes), sub_spec.parent)
            if pairs is None:
                return self._miss("subclass")
            sub_var, count_var = sub_spec.var_names
            result = SelectResult(
                [sub_var, count_var],
                [
                    {sub_var: sub, count_var: _int_literal(count)}
                    for sub, count in pairs
                ],
            )
            return self._hit("subclass", result, query_text)
        obj_spec = match_object_chart(query_text, query=parsed)
        if obj_spec is not None:
            pairs = self.connection_expansion(
                list(obj_spec.classes), obj_spec.prop, obj_spec.direction
            )
            if pairs is None:
                return self._miss("connection")
            type_var, count_var = obj_spec.var_names
            result = SelectResult(
                [type_var, count_var],
                [
                    {type_var: cls, count_var: _int_literal(count)}
                    for cls, count in pairs
                ],
            )
            return self._hit("connection", result, query_text)
        count_spec = match_member_count(query_text, query=parsed)
        if count_spec is not None:
            count = self.member_count(list(count_spec.classes))
            if count is None:
                return self._miss("count")
            result = SelectResult(
                [count_spec.var_name],
                [{count_spec.var_name: _int_literal(count)}],
            )
            return self._hit("count", result, query_text)
        return self._miss("other")

    def _miss(self, shape: str) -> None:
        self.misses += 1
        _VIEW_LOOKUPS_TOTAL.labels(shape=shape, outcome="miss").inc()
        return None

    def _hit(
        self, shape: str, result: SelectResult, query_text: str
    ) -> EndpointResponse:
        self.hits += 1
        _VIEW_LOOKUPS_TOTAL.labels(shape=shape, outcome="hit").inc()
        # Simulated latency: per-bar row assembly only — the aggregates
        # are already sitting in the maintained tables (O(bars)).
        elapsed = self.cost_model.simulate_ms(
            intermediate_bindings=0,
            pattern_scans=0,
            result_rows=len(result.rows),
        )
        self.clock.advance(elapsed)
        response = EndpointResponse(
            result=result,
            elapsed_ms=elapsed,
            source="views",
            query_text=query_text,
            stats=None,
        )
        observe_response(response)
        return response

    # ------------------------------------------------------------------
    # Testing support
    # ------------------------------------------------------------------

    def table_state(self):
        """Normalized snapshot of the eager tables (delta ≡ rebuild tests)."""
        return {
            "instances": {
                cls: frozenset(members)
                for cls, members in self._instances.items()
            },
            "types": {
                node: frozenset(classes) for node, classes in self._types.items()
            },
            "subclasses": {
                parent: frozenset(subs)
                for parent, subs in self._subclasses.items()
            },
            "props": tuple(
                {node: dict(props) for node, props in side.items()}
                for side in self._props
            ),
            "class_props": {
                key: {prop: tuple(entry) for prop, entry in table.items()}
                for key, table in self._class_props.items()
            },
        }


def _int_literal(value: int) -> Literal:
    return Literal(str(value), datatype=_XSD_INTEGER)
