"""The paper's Section 4 responsiveness techniques: incremental
evaluation, the heavy-query store (HVS), the delta-maintained
materialized chart views (with the build-once specialised indexes as
their non-tracking façade), the decomposer over those tables, and the
eLinda endpoint router that chains them."""

from .decomposer import Decomposer, PropertyExpansionSpec, match_property_expansion
from .hvs import DEFAULT_HEAVY_THRESHOLD_MS, HeavyQueryStore, HvsEntry, normalize_query
from .incremental import IncrementalConfig, IncrementalEvaluator, PartialResult
from .indexes import PropertyCount, SpecializedIndexes
from .plancache import CachedPlan, PlanCache, build_plan
from .remote_incremental import (
    RemoteIncrementalConfig,
    RemoteIncrementalEvaluator,
)
from .router import ElindaEndpoint
from .views import (
    MaterializedViews,
    match_member_count,
    match_object_chart,
    match_subclass_chart,
)

__all__ = [
    "MaterializedViews",
    "SpecializedIndexes",
    "PropertyCount",
    "match_subclass_chart",
    "match_member_count",
    "match_object_chart",
    "Decomposer",
    "PropertyExpansionSpec",
    "match_property_expansion",
    "HeavyQueryStore",
    "HvsEntry",
    "CachedPlan",
    "PlanCache",
    "build_plan",
    "normalize_query",
    "DEFAULT_HEAVY_THRESHOLD_MS",
    "IncrementalConfig",
    "IncrementalEvaluator",
    "PartialResult",
    "RemoteIncrementalConfig",
    "RemoteIncrementalEvaluator",
    "ElindaEndpoint",
]
