"""The eLinda heavy-query store (HVS) — Section 4.

"eLinda detects heavy queries and saves their results in a key-value
store called heavy query store (HVS) on the eLinda endpoint. ... Queries
with runtime bigger than one second are considered heavy and saved in
the HVS.  The HVS is cleared on any update to the eLinda knowledge
bases."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..endpoint.base import EndpointResponse, observe_response
from ..endpoint.clock import SimClock
from ..endpoint.cost import HVS_PROFILE, CostModel
from ..obs.metrics import REGISTRY
from ..sparql.results import AskResult, SelectResult

__all__ = ["HvsEntry", "HeavyQueryStore", "normalize_query"]

_HVS_LOOKUPS_TOTAL = REGISTRY.counter(
    "repro_hvs_lookups_total",
    "Heavy-query store lookups by outcome",
    labelnames=("outcome",),
)
_HVS_HIT = _HVS_LOOKUPS_TOTAL.labels(outcome="hit")
_HVS_MISS = _HVS_LOOKUPS_TOTAL.labels(outcome="miss")
_HVS_STORES_TOTAL = REGISTRY.counter(
    "repro_hvs_stores_total", "Heavy results stored in the HVS"
)
_HVS_REJECTED_LIGHT_TOTAL = REGISTRY.counter(
    "repro_hvs_rejected_light_total",
    "Results not cached because the query ran under the heaviness threshold",
)
_HVS_INVALIDATIONS_TOTAL = REGISTRY.counter(
    "repro_hvs_invalidations_total",
    "Whole-store invalidations triggered by knowledge-base updates",
)

#: The paper's heaviness threshold: one (simulated) second.
DEFAULT_HEAVY_THRESHOLD_MS = 1000.0

def _skip_string_literal(query_text: str, start: int) -> int:
    """Index one past the string literal opening at ``start``.

    Handles ``'...'``, ``"..."``, and their triple-quoted long forms,
    honouring backslash escapes.  An unterminated literal swallows the
    rest of the text (same as the SPARQL lexer would before erroring).
    """
    quote = query_text[start]
    delim = quote * 3 if query_text.startswith(quote * 3, start) else quote
    i = start + len(delim)
    n = len(query_text)
    while i < n:
        if query_text[i] == "\\":
            i += 2
            continue
        if query_text.startswith(delim, i):
            return i + len(delim)
        i += 1
    return n


def normalize_query(query_text: str) -> str:
    """Canonical cache key: whitespace-collapsed query text.

    Whitespace is collapsed *outside* string literals only — inside
    ``'...'``/``"..."``/triple-quoted literals every character is part
    of the query's meaning (``FILTER(?l = "a  b")`` and ``"a b"`` are
    different queries), so literals are copied verbatim.
    """
    out = []
    pending_space = False
    i = 0
    n = len(query_text)
    while i < n:
        char = query_text[i]
        if char in "\"'":
            end = _skip_string_literal(query_text, i)
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(query_text[i:end])
            i = end
        elif char.isspace():
            pending_space = True
            i += 1
        else:
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(char)
            i += 1
    return "".join(out)


@dataclass
class HvsEntry:
    """One cached heavy-query result."""

    result: object  # SelectResult | AskResult
    original_runtime_ms: float
    dataset_version: int
    hits: int = 0


@dataclass
class HvsStats:
    """Hit/miss counters for observability and the benches."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    rejected_light: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class HeavyQueryStore:
    """Key-value cache of heavy query results."""

    def __init__(
        self,
        threshold_ms: float = DEFAULT_HEAVY_THRESHOLD_MS,
        clock: Optional[SimClock] = None,
        cost_model: CostModel = HVS_PROFILE,
    ):
        if threshold_ms <= 0:
            raise ValueError("threshold must be positive")
        self.threshold_ms = threshold_ms
        self.clock = clock or SimClock()
        self.cost_model = cost_model
        self._entries: Dict[str, HvsEntry] = {}
        self._version: Optional[int] = None
        self.stats = HvsStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, query_text: object) -> bool:
        if not isinstance(query_text, str):
            return False
        return normalize_query(query_text) in self._entries

    # ------------------------------------------------------------------
    # Cache protocol
    # ------------------------------------------------------------------

    def _check_version(self, dataset_version: int) -> None:
        """Clear everything when the knowledge base changed."""
        if self._version is not None and self._version != dataset_version:
            if self._entries:
                self.stats.invalidations += 1
                _HVS_INVALIDATIONS_TOTAL.inc()
            self._entries.clear()
        self._version = dataset_version

    def lookup(
        self, query_text: str, dataset_version: int
    ) -> Optional[EndpointResponse]:
        """A cached response, or None; charges the KV-hit latency."""
        self._check_version(dataset_version)
        entry = self._entries.get(normalize_query(query_text))
        if entry is None:
            self.stats.misses += 1
            _HVS_MISS.inc()
            return None
        entry.hits += 1
        self.stats.hits += 1
        _HVS_HIT.inc()
        result = entry.result
        rows = len(result.rows) if isinstance(result, SelectResult) else 1
        elapsed = self.cost_model.simulate_ms(
            intermediate_bindings=0, pattern_scans=0, result_rows=rows
        )
        self.clock.advance(elapsed)
        response = EndpointResponse(
            result=result,
            elapsed_ms=elapsed,
            source="hvs",
            query_text=query_text,
            stats=None,
        )
        observe_response(response)
        return response

    def record(
        self,
        query_text: str,
        result: object,
        runtime_ms: float,
        dataset_version: int,
    ) -> bool:
        """Store the result iff the query proved heavy; returns whether
        it was stored."""
        if not isinstance(result, (SelectResult, AskResult)):
            raise TypeError("only query results can be cached")
        self._check_version(dataset_version)
        if runtime_ms <= self.threshold_ms:
            self.stats.rejected_light += 1
            _HVS_REJECTED_LIGHT_TOTAL.inc()
            return False
        self._entries[normalize_query(query_text)] = HvsEntry(
            result=result,
            original_runtime_ms=runtime_ms,
            dataset_version=dataset_version,
        )
        self.stats.stores += 1
        _HVS_STORES_TOTAL.inc()
        return True

    def clear(self) -> None:
        """Explicitly drop all cached results."""
        self._entries.clear()

    def entries(self) -> Dict[str, HvsEntry]:
        """A copy of the cache contents (for inspection/tests)."""
        return dict(self._entries)
