"""Incremental evaluation (Section 4).

"eLinda builds the chart of an expansion by computing it on the first N
triples in the RDF graph.  It then continues to compute the query on the
next N triples and aggregates the results in the frontend.  It continues
for k steps, or until the full chart is computed.  In the current
implementation, the parameters N and k are determined by an
administrator's configuration.  This method provides eLinda with
effective latency for user interaction ... it works well on remote
servers in the compatibility mode."

Two windowing policies are provided:

* ``by_subject=False`` — raw triple windows, the paper's literal text.
  Partial charts are approximations (a member's triples may straddle a
  window boundary), converging as windows accumulate.
* ``by_subject=True`` (default) — windows aligned on subject boundaries,
  which makes the merged aggregates of eLinda's chart queries *exact*
  once all windows are consumed.  This is the refinement the frontend
  aggregation relies on and is documented as such in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..endpoint.clock import SimClock
from ..endpoint.cost import LOCAL_PROFILE, CostModel
from ..obs.metrics import REGISTRY
from ..rdf.graph import Graph
from ..rdf.terms import Literal, Term
from ..rdf.triple import Triple
from ..sparql.algebra import contains_aggregate
from ..sparql.ast import AggregateExpr, SelectQuery
from ..sparql.errors import SparqlEvalError
from ..sparql.functions import term_order_key
from ..sparql.parser import parse_query
from ..sparql.results import SelectResult

__all__ = ["IncrementalConfig", "PartialResult", "IncrementalEvaluator"]

_XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
_XSD_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"


def _parse_number(term: Optional[Term]):
    """Numeric value of a literal, int first then float; None otherwise.

    Window results come out of the engine's ``_numeric_literal``, which
    emits ``str(int)`` for integer totals and ``repr(float)`` for the
    rest — so int-then-float parsing recovers exactly the engine's
    coercion (integer-family datatypes stay int, decimal/double go
    float) without inspecting datatypes.
    """
    if not isinstance(term, Literal):
        return None
    try:
        return int(term.lexical)
    except ValueError:
        pass
    try:
        return float(term.lexical)
    except ValueError:
        return None

#: Shared with :mod:`repro.perf.remote_incremental` (mode="remote").
INCREMENTAL_WINDOWS_TOTAL = REGISTRY.counter(
    "repro_incremental_windows_total",
    "Windows (local) or pages (remote) consumed by incremental evaluation",
    labelnames=("mode",),
)
_WINDOWS_LOCAL = INCREMENTAL_WINDOWS_TOTAL.labels(mode="local")


@dataclass(frozen=True)
class IncrementalConfig:
    """The administrator's N and k (Section 4)."""

    window_size: int = 2000
    max_steps: Optional[int] = None
    by_subject: bool = True

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if self.max_steps is not None and self.max_steps <= 0:
            raise ValueError("max_steps must be positive when given")


@dataclass
class PartialResult:
    """The merged chart after one more window."""

    result: SelectResult
    step: int
    windows_consumed: int
    complete: bool
    elapsed_ms: float          # this step's simulated latency
    cumulative_ms: float       # total simulated latency so far


def _subject_windows(graph: Graph, window_size: int) -> Iterator[List[Triple]]:
    """Windows of ~window_size triples aligned on subject boundaries."""
    batch: List[Triple] = []
    current_subject = None
    for triple in graph.triples():
        if (
            len(batch) >= window_size
            and triple.subject != current_subject
        ):
            yield batch
            batch = []
        batch.append(triple)
        current_subject = triple.subject
    if batch:
        yield batch


def _triple_windows(graph: Graph, window_size: int) -> Iterator[List[Triple]]:
    batch: List[Triple] = []
    for triple in graph.triples():
        batch.append(triple)
        if len(batch) == window_size:
            yield batch
            batch = []
    if batch:
        yield batch


class IncrementalEvaluator:
    """Evaluates a chart query window-by-window with frontend merging.

    Only aggregate queries with mergeable aggregates (COUNT, SUM, MIN,
    MAX) are supported — exactly the chart queries eLinda generates.
    Non-aggregate queries are merged by row-set union.
    """

    def __init__(
        self,
        graph: Graph,
        config: Optional[IncrementalConfig] = None,
        cost_model: CostModel = LOCAL_PROFILE,
        clock: Optional[SimClock] = None,
    ):
        self.graph = graph
        self.config = config or IncrementalConfig()
        self.cost_model = cost_model
        self.clock = clock or SimClock()

    # ------------------------------------------------------------------
    # Merge planning
    # ------------------------------------------------------------------

    def _merge_plan(self, query: SelectQuery) -> Dict[str, str]:
        """Map projection variable -> merge operation.

        ``key`` = group identity, ``sum``/``min``/``max`` = aggregate
        merge; raises for non-mergeable aggregates.
        """
        plan: Dict[str, str] = {}
        if query.projections is None:
            raise SparqlEvalError("incremental evaluation needs projections")
        for projection in query.projections:
            expression = projection.expression
            if expression is None or not contains_aggregate(expression):
                plan[projection.var.name] = "key"
                continue
            if not isinstance(expression, AggregateExpr):
                raise SparqlEvalError(
                    "incremental evaluation supports bare aggregates only"
                )
            if expression.name in ("COUNT", "SUM"):
                plan[projection.var.name] = "sum"
            elif expression.name in ("MIN", "MAX"):
                plan[projection.var.name] = expression.name.lower()
            else:
                raise SparqlEvalError(
                    f"aggregate {expression.name} is not mergeable across "
                    "windows"
                )
        return plan

    @staticmethod
    def _merge_value(op: str, old: Optional[Term], new: Optional[Term]) -> Optional[Term]:
        if old is None:
            return new
        if new is None:
            return old
        if op == "sum":
            old_number = _parse_number(old)
            new_number = _parse_number(new)
            if old_number is None or new_number is None:
                # Never drop the accumulated total on an unparseable
                # value: keep what has been merged so far.
                return old
            total = old_number + new_number
            if isinstance(total, int):
                return Literal(str(total), datatype=_XSD_INTEGER)
            # Widest datatype wins once any float entered the sum;
            # repr() matches the engine's _numeric_literal output.
            return Literal(repr(total), datatype=_XSD_DOUBLE)
        # SPARQL value order (term_order_key), which compares numeric
        # literals by value — lexicographic sort_key would rank "9"
        # above "10".
        if op == "min":
            return min(old, new, key=term_order_key)
        if op == "max":
            return max(old, new, key=term_order_key)
        return new

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def run(self, query_text: str) -> Iterator[PartialResult]:
        """Yield one merged :class:`PartialResult` per window."""
        query = parse_query(query_text)
        if not isinstance(query, SelectQuery):
            raise SparqlEvalError("incremental evaluation supports SELECT only")
        # Parse and plan once; every window instantiates the same
        # compiled physical plan (structurally optimized only —
        # per-window graphs are too small and short-lived to justify
        # statistics).  The factory's one-time planning decisions (join
        # keys, pattern order, filter placement) amortise across all k
        # windows.
        from ..sparql.algebra import translate_query
        from ..sparql.executor import run_to_completion as run_physical
        from ..sparql.optimizer import optimize as run_optimizer
        from ..sparql.planner import PhysicalPlanFactory

        algebra, _ = run_optimizer(translate_query(query))
        factory = PhysicalPlanFactory(query, algebra)
        is_aggregate = bool(query.group_by) or any(
            projection.expression is not None
            and contains_aggregate(projection.expression)
            for projection in (query.projections or [])
        )
        plan = self._merge_plan(query) if is_aggregate else None

        maker = _subject_windows if self.config.by_subject else _triple_windows
        windows = maker(self.graph, self.config.window_size)
        merged: Dict[Tuple, Dict[str, Optional[Term]]] = {}
        plain_rows: Dict[Tuple, Dict[str, Term]] = {}
        variables: List[str] = []
        cumulative = 0.0
        consumed = 0

        # Peek whether more windows remain by buffering exactly one
        # window ahead — the stream is never materialized in full, so a
        # large graph costs one window of memory, not the whole graph.
        pending = next(windows, None)
        step = 0
        while pending is not None:
            window_triples = pending
            pending = next(windows, None)
            step += 1
            window_graph = Graph(window_triples)
            physical = factory.instantiate(window_graph)
            partial = run_physical(physical)
            assert isinstance(partial, SelectResult)
            variables = partial.vars
            if plan is not None:
                key_vars = [name for name in variables if plan.get(name) == "key"]
                for row in partial.rows:
                    key = tuple(row.get(name) for name in key_vars)
                    slot = merged.setdefault(
                        key, {name: row.get(name) for name in key_vars}
                    )
                    for name in variables:
                        op = plan.get(name, "key")
                        if op != "key":
                            slot[name] = self._merge_value(
                                op, slot.get(name), row.get(name)
                            )
            else:
                for row in partial.rows:
                    key = tuple(sorted(row.items()))
                    plain_rows.setdefault(key, row)
            elapsed = self.cost_model.simulate_ms(
                intermediate_bindings=physical.stats.intermediate_bindings,
                pattern_scans=physical.stats.pattern_scans,
                result_rows=len(partial.rows),
            )
            self.clock.advance(elapsed)
            cumulative += elapsed
            consumed = step
            _WINDOWS_LOCAL.inc()
            reached_cap = (
                self.config.max_steps is not None
                and step >= self.config.max_steps
            )
            rows = (
                [dict(slot) for slot in merged.values()]
                if plan is not None
                else list(plain_rows.values())
            )
            clean_rows = [
                {name: value for name, value in row.items() if value is not None}
                for row in rows
            ]
            yield PartialResult(
                result=SelectResult(variables, clean_rows),
                step=step,
                windows_consumed=consumed,
                complete=pending is None,
                elapsed_ms=elapsed,
                cumulative_ms=cumulative,
            )
            if reached_cap:
                return

    def run_to_completion(self, query_text: str) -> PartialResult:
        """Consume all windows (up to k) and return the final merge."""
        last: Optional[PartialResult] = None
        for partial in self.run(query_text):
            last = partial
        if last is None:
            raise SparqlEvalError("empty graph: no windows to evaluate")
        return last
